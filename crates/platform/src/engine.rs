//! The execution engine: drives a [`Scheduler`] against a [`Platform`] with
//! a task stream, implementing the paper's execution semantics:
//!
//! * a task group occupies **one queue slot** and its members start as a
//!   unit once the group reaches the head of the queue and enough
//!   processors are idle (§IV.D.2: "a task group is considered as a single
//!   arrival unit and dedicated to one slot in the queue"),
//! * the **split process** (§IV.D.2): while an earlier group still runs,
//!   idle processors pull EDF-ordered tasks from the next waiting group,
//! * the two reinforcement feedback signals (§IV.C): the Eq. (9) *error*
//!   immediately after assignment, the Eq. (8) *reward* when the whole
//!   group has completed,
//! * energy accounting per Eqs. (5)–(6) throughout.
//!
//! One **learning cycle** = one completed group feedback; Experiment 2's
//! utilisation-versus-learning-cycle curves are derived from the
//! [`CycleSample`] log.

use crate::fault::{FaultPlan, FaultSpec, FaultTarget, PlannedFault};
use crate::group::{GroupId, TaskGroup};
use crate::ids::{NodeAddr, ProcAddr};
use crate::monitor::{LiveMetrics, SamplerConfig};
use crate::oracle::{AuditReport, Oracle, RunTotals};
use crate::queue::QueuedGroup;
use crate::scheduler::{AssignmentFeedback, Command, GroupFeedback, Scheduler};
use crate::topology::{Platform, PlatformSpec};
use crate::view::PlatformView;
use serde::{Deserialize, Serialize};
use simcore::engine::{Engine, EngineHandle, RunOutcome, Simulation};
use simcore::rng::RngStream;
use simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;
use telemetry::{
    PhaseProfiler, Progress, Recorder, SitePoint, TelemetrySummary, TimePoint, TimeSeriesLog,
    TimeSeriesRing, TraceLevel, Value,
};
use workload::{Priority, SiteId, Task, TaskId};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Whether the §IV.D.2 split process is active (ablatable).
    pub split_enabled: bool,
    /// Control-tick period; ticks fire while tasks remain outstanding.
    pub tick_interval: f64,
    /// Maximum number of simulation events (runaway guard).
    pub fuse: u64,
    /// Hard wall on simulated time; the run aborts past this.
    pub max_time: f64,
    /// Fault-injection knobs. Disabled by default: with `faults.enabled ==
    /// false` the engine draws no fault randomness and behaves exactly as
    /// it did before the fault subsystem existed.
    pub faults: FaultSpec,
    /// Run the correctness [`Oracle`] alongside the simulation and attach
    /// its [`AuditReport`] to the result. Strictly observing — scheduling
    /// decisions, RNG draws and metric values are bit-identical with the
    /// audit on or off — but costs roughly a shadow state machine per
    /// processor, so it defaults to off.
    pub audit: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            split_enabled: true,
            tick_interval: 5.0,
            fuse: 50_000_000,
            max_time: 1.0e7,
            faults: FaultSpec::default(),
            audit: false,
        }
    }
}

/// How a task's lifecycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// Finished within its deadline.
    Met,
    /// Finished, but after its deadline.
    Missed,
    /// Abandoned: injected failures exhausted its re-dispatch budget, or
    /// its site permanently lost every processor.
    Failed,
}

/// Full per-task outcome record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task.
    pub task: TaskId,
    /// Arrival site.
    pub site: SiteId,
    /// Node it executed on.
    pub node: NodeAddr,
    /// The group it was merged into.
    pub group: GroupId,
    /// Task priority.
    pub priority: Priority,
    /// Computational size (MI).
    pub size_mi: f64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// When its group was enqueued at the node.
    pub dispatched: SimTime,
    /// When it began executing.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Its deadline.
    pub deadline: SimTime,
    /// Whether it finished by the deadline.
    pub met: bool,
    /// Whether it entered execution through the split process.
    pub split: bool,
    /// How the lifecycle ended (`met` is `outcome == Met`, kept for
    /// compatibility). For [`TaskOutcome::Failed`] records, `finished` is
    /// the abandonment instant, and `node`/`group`/`started` hold the last
    /// known assignment (or `NodeAddr {site, node: 0}` / [`GroupId::NONE`]
    /// / the abandonment instant when the task never dispatched).
    pub outcome: TaskOutcome,
    /// Re-dispatch attempts consumed by failures (0 on an undisturbed
    /// task).
    pub attempts: u32,
}

impl TaskRecord {
    /// Response time per Eq. (4)'s summand: waiting plus execution — i.e.
    /// arrival to completion.
    pub fn response_time(&self) -> f64 {
        self.finished.since(self.arrival).as_f64()
    }

    /// Queueing delay (arrival to execution start).
    pub fn wait_time(&self) -> f64 {
        self.started.since(self.arrival).as_f64()
    }

    /// Execution time.
    pub fn exec_time(&self) -> f64 {
        self.finished.since(self.started).as_f64()
    }
}

/// One learning-cycle sample: cumulative useful work delivered at the
/// instant a group feedback was processed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleSample {
    /// Learning-cycle index (1-based).
    pub cycle: u64,
    /// Simulation time of the sample.
    pub time: f64,
    /// Cumulative computational work completed across all processors (MI).
    /// Work — not raw busy time — so that throttled execution (slower,
    /// same instructions) and sleeping both register as reduced service.
    pub work_mi: f64,
}

/// Everything a run produced; the metric layer derives the paper's figures
/// from this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The scheduler's name.
    pub scheduler: String,
    /// Per-task outcomes, in completion order.
    pub records: Vec<TaskRecord>,
    /// Tasks submitted but never completed (0 on a healthy run).
    pub incomplete: usize,
    /// Tasks submitted.
    pub num_tasks: usize,
    /// Instant the last task completed.
    pub makespan: f64,
    /// System energy `ECS` (Eq. 6 summed over nodes) at the makespan.
    pub total_energy: f64,
    /// Mean processor utilisation at the makespan.
    pub mean_utilisation: f64,
    /// Learning-cycle log for utilisation-vs-cycles curves.
    pub cycles: Vec<CycleSample>,
    /// Groups dispatched.
    pub groups_dispatched: u64,
    /// Groups completed (= learning cycles).
    pub groups_completed: u64,
    /// Task starts that went through the split process.
    pub split_starts: u64,
    /// Dispatch commands bounced back to the scheduler.
    pub rejections: u64,
    /// Tasks abandoned after injected failures exhausted their retry
    /// budget (each still gets a [`TaskOutcome::Failed`] record).
    pub tasks_failed: usize,
    /// Queued groups destroyed by failures before completing.
    pub groups_aborted: u64,
    /// Fault events injected (processor and whole-node failures).
    pub faults_injected: u64,
    /// Planned outages whose recovery was applied (same units as
    /// [`RunResult::faults_injected`]; superseded or permanent outages
    /// never recover).
    pub faults_recovered: u64,
    /// Tasks preempted mid-execution by failures.
    pub preemptions: u64,
    /// Re-dispatches of preempted or orphaned tasks.
    pub retries: u64,
    /// Processor population of the platform.
    pub total_procs: usize,
    /// Sum of nominal processor speeds (MIPS) — the denominator of the
    /// work-based utilisation metric.
    pub total_mips: f64,
    /// Instant of the last task arrival — the end of the paper's
    /// "observation period" (completions after it are queue drain).
    pub arrival_horizon: f64,
    /// The platform spec the run used.
    pub platform_spec: PlatformSpec,
    /// How the event loop ended.
    pub outcome: String,
    /// Simulation events processed by the event loop — the numerator of
    /// the throughput benchmark's events/sec figure.
    pub events_processed: u64,
    /// Peak number of pending future events the event queue held at any
    /// point of the run — sizes the calendar queue's bucket wheel.
    /// Diagnostics only: excluded from replay comparison.
    #[serde(default)]
    pub max_queue_occupancy: usize,
    /// Sim-time series of energy/power/queue/availability snapshots on
    /// the sampler cadence. `None` unless the run was executed with a
    /// sampler attached. Diagnostics only: excluded from replay
    /// comparison.
    #[serde(default)]
    pub timeseries: Option<TimeSeriesLog>,
    /// Counter totals and histogram quantiles accumulated by the run's
    /// telemetry recorder. `None` on untraced runs.
    pub telemetry: Option<TelemetrySummary>,
    /// The correctness oracle's findings. `None` unless the run was
    /// executed with [`ExecConfig::audit`] set.
    pub audit: Option<AuditReport>,
}

impl RunResult {
    /// Eq. (4) average response time over completed tasks. Tasks abandoned
    /// because of injected failures never completed and are excluded.
    pub fn avg_response_time(&self) -> f64 {
        let done: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.outcome != TaskOutcome::Failed)
            .map(|r| r.response_time())
            .collect();
        if done.is_empty() {
            return 0.0;
        }
        done.iter().sum::<f64>() / done.len() as f64
    }

    /// Successful rate (§V Exp. 3): deadline-met fraction over submitted
    /// tasks (`rew_val / N`).
    pub fn success_rate(&self) -> f64 {
        if self.num_tasks == 0 {
            return 0.0;
        }
        self.records.iter().filter(|r| r.met).count() as f64 / self.num_tasks as f64
    }

    /// Fraction of submitted tasks abandoned because of failures.
    pub fn failure_rate(&self) -> f64 {
        if self.num_tasks == 0 {
            return 0.0;
        }
        self.tasks_failed as f64 / self.num_tasks as f64
    }
}

/// Engine events. `TaskDone`/`WakeDone` carry the processor's fault epoch
/// at scheduling time: a failure bumps the epoch, so completions and wake
/// transitions queued before the crash arrive stale and are ignored.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    Arrival(u32),
    TaskDone(ProcAddr, u32),
    WakeDone(ProcAddr, u32),
    Tick,
    Fault(u32),
    Recover(u32),
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Partial {
    pub(crate) node: Option<NodeAddr>,
    pub(crate) group: Option<GroupId>,
    pub(crate) dispatched: Option<SimTime>,
    pub(crate) started: Option<SimTime>,
    pub(crate) finished: Option<SimTime>,
    /// Instant the task was abandoned (retry budget exhausted or site
    /// permanently dead). Mutually exclusive with `finished`.
    pub(crate) failed_at: Option<SimTime>,
    pub(crate) met: bool,
    pub(crate) split: bool,
    /// Re-dispatch attempts consumed by failures.
    pub(crate) attempts: u32,
}

pub(crate) struct Driver<'s, S: Scheduler> {
    pub(crate) platform: Platform,
    pub(crate) tasks: Vec<Task>,
    pub(crate) sched: &'s mut S,
    pub(crate) cfg: ExecConfig,
    pub(crate) partials: Vec<Partial>,
    pub(crate) completed: usize,
    pub(crate) finished_work: f64,
    pub(crate) cycles: Vec<CycleSample>,
    pub(crate) cycle: u64,
    pub(crate) next_group: u64,
    pub(crate) groups_dispatched: u64,
    pub(crate) groups_completed: u64,
    pub(crate) split_starts: u64,
    pub(crate) rejections: u64,
    pub(crate) last_completion: SimTime,
    /// The fault timeline (empty when faults are disabled).
    pub(crate) plan: Vec<PlannedFault>,
    /// Flat processor-index base per `[site][node]` (for `epochs`/
    /// `offline_until`) — plain vector indexing, no hashing on the hot
    /// path.
    pub(crate) proc_base: Vec<Vec<usize>>,
    /// Per-processor fault epoch; bumped on every failure so queued
    /// `TaskDone`/`WakeDone` events from before the crash are recognised
    /// as stale.
    pub(crate) epochs: Vec<u32>,
    /// Per-processor end of the current outage: `0` when never failed,
    /// `INFINITY` when permanently dead, otherwise the latest planned
    /// recovery instant (overlapping outages max-merge).
    pub(crate) offline_until: Vec<f64>,
    /// Per-site count of processors not permanently failed. Zero means the
    /// site can never execute anything again.
    pub(crate) site_perm_procs: Vec<usize>,
    pub(crate) failed_tasks: usize,
    pub(crate) faults_injected: u64,
    pub(crate) faults_recovered: u64,
    pub(crate) preemptions: u64,
    pub(crate) retries: u64,
    pub(crate) groups_aborted: u64,
    /// Reused buffer for nodes touched by one command batch.
    pub(crate) touched_scratch: Vec<NodeAddr>,
    /// Reused buffer for events produced by one engine event.
    pub(crate) ev_scratch: Vec<(SimTime, Ev)>,
    /// Telemetry recorder; [`telemetry::NULL`] on untraced runs.
    pub(crate) rec: &'s dyn Recorder,
    /// Level gates resolved once at construction: the disabled path pays
    /// one predictable branch per site, never a virtual call.
    pub(crate) t_cyc: bool,
    pub(crate) t_dec: bool,
    /// Whether the recorder wants periodic [`Progress`] snapshots.
    pub(crate) progress_on: bool,
    /// Wall-clock start, for progress rate reporting.
    pub(crate) wall_start: std::time::Instant,
    /// Engine events seen (mirrors the engine's own counter, which the
    /// driver cannot reach mid-run).
    pub(crate) events_seen: u64,
    /// Tasks that met their deadline so far (for progress snapshots).
    pub(crate) met_count: usize,
    /// First flat node-track index per site (Chrome-trace `tid`s).
    pub(crate) node_track: Vec<u32>,
    /// Live metrics handles; `None` on unmonitored runs keeps every
    /// mirror site a single predictable branch, like the tracing gates.
    pub(crate) mon: Option<Arc<LiveMetrics>>,
    /// Time-series sampler ring; `None` when sampling is off. Samples
    /// are taken on control ticks (plus one final point at run end), so
    /// the configured cadence rounds up to the tick interval.
    pub(crate) sampler: Option<TimeSeriesRing>,
    /// The correctness oracle, when the run is audited (strictly
    /// observing; `None` keeps the hot path a single branch per hook).
    pub(crate) oracle: Option<Box<Oracle>>,
    /// Instant the run settled: every task resolved (completed or
    /// failed). Events after this are frozen — they must not disturb the
    /// platform's accounting — and the energy/utilisation horizon reads
    /// here when it exceeds the makespan (processors still draw power
    /// between the last completion and settlement, e.g. a failure path
    /// abandoning its final task after the last completion).
    pub(crate) settled_at: SimTime,
}

/// Flat processor layout of a platform: per-`[site][node]` base indices
/// into the flat per-processor vectors, the first Chrome-trace node track
/// per site, and the total processor count. Shared by the run setup and
/// the checkpoint restore path, which must agree on the layout exactly.
pub(crate) fn proc_layout(platform: &Platform) -> (Vec<Vec<usize>>, Vec<u32>, usize) {
    let mut proc_base: Vec<Vec<usize>> = Vec::with_capacity(platform.num_sites());
    let mut node_track = Vec::with_capacity(platform.num_sites());
    let mut flat = 0usize;
    let mut next_track = 0u32;
    for site in &platform.sites {
        let mut bases = Vec::with_capacity(site.nodes.len());
        node_track.push(next_track);
        next_track += site.nodes.len() as u32;
        for node in &site.nodes {
            bases.push(flat);
            flat += node.num_processors();
        }
        proc_base.push(bases);
    }
    (proc_base, node_track, flat)
}

impl<S: Scheduler> Driver<'_, S> {
    /// Flat processor index (into `epochs` / `offline_until`).
    fn pidx(&self, p: ProcAddr) -> usize {
        self.proc_base[p.node.site.0 as usize][p.node.node as usize] + p.proc as usize
    }

    /// Flat processor-index base of a node.
    fn base(&self, addr: NodeAddr) -> usize {
        self.proc_base[addr.site.0 as usize][addr.node as usize]
    }

    /// Tasks resolved so far: every arrived task must end up completed
    /// (met or missed) or failed — the conservation invariant.
    fn resolved(&self) -> usize {
        self.completed + self.failed_tasks
    }

    /// Flat node index across the whole platform — the Chrome-trace
    /// `tid`, so each node renders as its own track.
    fn track(&self, addr: NodeAddr) -> u32 {
        self.node_track[addr.site.0 as usize] + addr.node
    }

    /// Emit one [`Progress`] snapshot (gated by `progress_on` at call
    /// sites; the energy integral here is O(nodes)).
    fn emit_progress(&self, now: SimTime) {
        let p = Progress {
            sim_time: now.as_f64(),
            wall_s: self.wall_start.elapsed().as_secs_f64(),
            done: self.resolved(),
            total: self.tasks.len(),
            met: self.met_count,
            energy: self.platform.total_energy_at(now),
            events: self.events_seen,
        };
        self.rec.progress(&p);
    }

    /// Refreshes the live gauges and, when the sampler cadence has
    /// elapsed, appends one [`TimePoint`] to the ring. Called on control
    /// ticks and once more at run end — never from the per-event hot
    /// path, since the energy integral and per-site stats are O(nodes).
    pub(crate) fn monitor_tick(&mut self, now: SimTime, final_point: bool) {
        let due = match &self.sampler {
            Some(ring) => final_point || ring.due(now.as_f64()),
            None => false,
        };
        if self.mon.is_none() && !due {
            return;
        }
        let energy = self.platform.total_energy_at(now);
        let epsilon = self.sched.exploration();
        if let Some(m) = &self.mon {
            m.sim_time.set(now.as_f64());
            m.energy_joules.set(energy);
            if let Some(e) = epsilon {
                m.epsilon.set(e);
            }
        }
        let num_sites = self.platform.num_sites();
        let mut sites = Vec::new();
        if due {
            sites.reserve(num_sites);
        }
        for s in 0..num_sites {
            if self.mon.is_none() && !due {
                break;
            }
            let site = SiteId(s as u32);
            let (st, power) = self.site_snapshot(site);
            let availability = if st.procs > 0 {
                (st.procs - st.failed) as f64 / st.procs as f64
            } else {
                0.0
            };
            if let Some(m) = &self.mon {
                m.site_power[s].set(power);
                m.site_queue[s].set(st.queued_groups as f64);
                m.site_availability[s].set(availability);
            }
            if due {
                sites.push(SitePoint {
                    power_w: power,
                    queue_depth: st.queued_groups as u64,
                    availability,
                });
            }
        }
        if due {
            let (p50, p95, p99) = match &self.mon {
                Some(m) => (
                    m.decision_latency.quantile(0.50).unwrap_or(0.0) * 1e6,
                    m.decision_latency.quantile(0.95).unwrap_or(0.0) * 1e6,
                    m.decision_latency.quantile(0.99).unwrap_or(0.0) * 1e6,
                ),
                None => (0.0, 0.0, 0.0),
            };
            let point = TimePoint {
                t: now.as_f64(),
                energy_j: energy,
                done: self.completed as u64,
                met: self.met_count as u64,
                failed: self.failed_tasks as u64,
                epsilon,
                decision_p50_us: p50,
                decision_p95_us: p95,
                decision_p99_us: p99,
                sites,
            };
            if let Some(ring) = &mut self.sampler {
                if final_point {
                    ring.push_final(point);
                } else {
                    ring.push(point);
                }
            }
        }
    }

    /// Per-site queue-depth and power snapshot appended to dispatch and
    /// fault/recovery records (only reached when a gate is already open).
    fn site_snapshot(&self, site: SiteId) -> (crate::topology::SiteStats, f64) {
        let st = self.platform.site_stats(site);
        let power: f64 = self.platform.sites[site.0 as usize]
            .nodes
            .iter()
            .map(|n| n.power_sum())
            .sum();
        (st, power)
    }

    /// Starts every task that can start on `addr` right now, per the
    /// batch-start and split rules. Pushes events to schedule into `out`.
    fn start_ready(&mut self, addr: NodeAddr, now: SimTime, out: &mut Vec<(SimTime, Ev)>) {
        let split_enabled = self.cfg.split_enabled;
        let base = self.base(addr);
        loop {
            let node = self.platform.node(addr);
            // First group with unstarted members. Completed groups are
            // removed eagerly, so every group before it is still running.
            let mut target = None;
            for (i, g) in node.queue.iter().enumerate() {
                if g.unstarted() > 0 {
                    target = Some(i);
                    break;
                }
            }
            let Some(gi) = target else { break };
            let (g_len, g_unstarted, g_started) = {
                let g = node.queue.get(gi).expect("index in range");
                (g.group.len(), g.unstarted(), g.has_started())
            };
            let idle_count = node.idle_count();
            let (to_start, as_split) = if gi == 0 {
                if g_started {
                    // Unit semantics already broken by an earlier split;
                    // keep it running greedily.
                    (idle_count.min(g_unstarted), false)
                } else if idle_count >= g_len {
                    (g_len, false)
                } else {
                    // Blocked at the head with nothing running ahead of it:
                    // wake sleepers to cover the deficit, then wait.
                    let waking = node
                        .processors
                        .iter()
                        .filter(|p| matches!(p.state(), crate::processor::ProcState::Waking { .. }))
                        .count();
                    let deficit = g_len.saturating_sub(idle_count + waking);
                    if deficit > 0 {
                        let num_procs = node.num_processors();
                        let mut woken = 0;
                        for i in 0..num_procs {
                            if woken == deficit {
                                break;
                            }
                            if let Some(until) = self.platform.begin_wake_proc(addr, i, now) {
                                if let Some(o) = self.oracle.as_mut() {
                                    o.on_wake_begin(base + i, now);
                                }
                                out.push((
                                    until,
                                    Ev::WakeDone(
                                        ProcAddr {
                                            node: addr,
                                            proc: i as u32,
                                        },
                                        self.epochs[base + i],
                                    ),
                                ));
                                woken += 1;
                            }
                        }
                    }
                    (0, false)
                }
            } else if split_enabled {
                // §IV.D.2: idle processors take EDF tasks from the next
                // waiting group while the earlier group still runs.
                (idle_count.min(g_unstarted), true)
            } else {
                (0, false)
            };
            if to_start == 0 {
                break;
            }
            for _ in 0..to_start {
                // Fastest idle processors serve the earliest deadlines.
                // Select-max with a strict `>` over ascending indices picks
                // the same processor sequence as the old stable descending
                // sort (ties resolve to the lowest index), without the
                // per-call index Vec; each pick leaves Idle, so started
                // processors drop out of the next scan automatically.
                let node = self.platform.node(addr);
                let mut best: Option<usize> = None;
                for (i, p) in node.processors.iter().enumerate() {
                    if !p.is_idle() {
                        continue;
                    }
                    match best {
                        Some(b) if p.speed_mips <= node.processors[b].speed_mips => {}
                        _ => best = Some(i),
                    }
                }
                let proc_idx = best.expect("idle count guarantees an idle processor");
                let (task, group_id) = {
                    let g = self
                        .platform
                        .node_mut(addr)
                        .queue
                        .get_mut(gi)
                        .expect("index in range");
                    let task = g.group.tasks[g.next_start];
                    g.next_start += 1;
                    g.running += 1;
                    if g.first_start.is_none() {
                        g.first_start = Some(now);
                    }
                    if as_split {
                        g.split_mode = true;
                    }
                    (task, g.group.id)
                };
                let finish = self.platform.start_task_on(
                    addr,
                    proc_idx,
                    now,
                    task.id,
                    group_id,
                    task.size_mi,
                );
                if self.oracle.is_some() {
                    let throttle = self.platform.node(addr).throttle;
                    if let Some(o) = self.oracle.as_mut() {
                        o.on_start(task.id, group_id, base + proc_idx, throttle, now);
                    }
                }
                out.push((
                    finish,
                    Ev::TaskDone(
                        ProcAddr {
                            node: addr,
                            proc: proc_idx as u32,
                        },
                        self.epochs[base + proc_idx],
                    ),
                ));
                let p = &mut self.partials[task.id.0 as usize];
                p.started = Some(now);
                p.split = as_split;
                if as_split {
                    self.split_starts += 1;
                    if self.t_cyc {
                        self.rec.counter_add("split.starts", 1);
                    }
                    if let Some(m) = &self.mon {
                        m.split_starts.inc(m.shard);
                    }
                }
            }
        }
    }

    /// Applies scheduler commands; pushes events to schedule into `out`.
    fn apply(&mut self, cmds: Vec<Command>, now: SimTime, out: &mut Vec<(SimTime, Ev)>) {
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        for cmd in cmds {
            match cmd {
                Command::Dispatch {
                    node: addr,
                    tasks,
                    policy,
                } => {
                    let accept = {
                        let node = self.platform.node(addr);
                        // `available_processors()` equals `num_processors()`
                        // on a healthy node, so without faults this check is
                        // unchanged; under faults it refuses groups wider
                        // than the node's surviving capacity.
                        !tasks.is_empty()
                            && tasks.len() <= node.available_processors()
                            && node.queue.available() > 0
                            && (!self.cfg.faults.enabled
                                || tasks.iter().all(|t| {
                                    let p = &self.partials[t.id.0 as usize];
                                    p.finished.is_none() && p.failed_at.is_none()
                                }))
                    };
                    if !accept {
                        self.rejections += 1;
                        if self.t_cyc {
                            self.rec.counter_add("dispatch.rejected", 1);
                        }
                        if let Some(m) = &self.mon {
                            m.dispatch_rejected.inc(m.shard);
                        }
                        let site = tasks.first().map(|t| t.site).unwrap_or(addr.site);
                        self.sched.on_rejected(now, site, tasks);
                        continue;
                    }
                    let gid = GroupId(self.next_group);
                    self.next_group += 1;
                    let capacity = self.platform.node(addr).processing_capacity();
                    let group = TaskGroup::new(gid, tasks, policy);
                    let pw = group.processing_weight();
                    // Eq. (9): err = |1 − 1 / proc_fitness|, proc_fitness = pw / PC_c.
                    let error = (1.0 - capacity / pw).abs();
                    for t in &group.tasks {
                        let p = &mut self.partials[t.id.0 as usize];
                        p.node = Some(addr);
                        p.group = Some(gid);
                        p.dispatched = Some(now);
                    }
                    if self.oracle.is_some() {
                        let node = self.platform.node(addr);
                        // Queue length *after* the push below succeeds.
                        let qlen = node.queue.len() + 1;
                        let qcap = node.queue.capacity();
                        let avail = node.available_processors();
                        if let Some(o) = self.oracle.as_mut() {
                            o.on_dispatch(gid, &group.tasks, qlen, qcap, avail, now);
                        }
                    }
                    let size = group.len();
                    let mut qg = QueuedGroup::new(group, now);
                    qg.assign_error = error;
                    self.platform
                        .enqueue_group(addr, qg)
                        .expect("availability checked above");
                    self.groups_dispatched += 1;
                    let fb = AssignmentFeedback {
                        group: gid,
                        node: addr,
                        policy,
                        size,
                        pw,
                        capacity,
                        error,
                    };
                    self.sched.on_assignment(now, &fb);
                    if self.t_cyc {
                        self.rec.counter_add("groups.dispatched", 1);
                    }
                    if let Some(m) = &self.mon {
                        m.groups_dispatched.inc(m.shard);
                    }
                    if self.t_dec {
                        let (st, power) = self.site_snapshot(addr.site);
                        self.rec.span_begin(
                            "group",
                            gid.0,
                            now.as_f64(),
                            self.track(addr),
                            &[
                                ("site", Value::U64(addr.site.0 as u64)),
                                ("node", Value::U64(addr.node as u64)),
                                ("size", Value::U64(size as u64)),
                                ("pw", Value::F64(pw)),
                                ("capacity", Value::F64(capacity)),
                                ("err", Value::F64(error)),
                                ("site_queued", Value::U64(st.queued_groups as u64)),
                                ("site_idle", Value::U64(st.idle as u64)),
                                ("site_power_w", Value::F64(power)),
                            ],
                        );
                        self.rec.gauge(
                            &format!("queued.site{}", addr.site.0),
                            now.as_f64(),
                            st.queued_groups as f64,
                        );
                    }
                    if !touched.contains(&addr) {
                        touched.push(addr);
                    }
                }
                Command::SetThrottle { node, level } => {
                    self.platform.set_throttle(node, level);
                }
                Command::Sleep(p) => {
                    let slept = self.platform.sleep_proc(p.node, p.proc as usize, now);
                    if slept && self.oracle.is_some() {
                        let flat = self.pidx(p);
                        if let Some(o) = self.oracle.as_mut() {
                            o.on_proc_sleep(flat, now);
                        }
                    }
                }
                Command::Wake(p) => {
                    if let Some(until) = self.platform.begin_wake_proc(p.node, p.proc as usize, now)
                    {
                        let flat = self.pidx(p);
                        if let Some(o) = self.oracle.as_mut() {
                            o.on_wake_begin(flat, now);
                        }
                        out.push((until, Ev::WakeDone(p, self.epochs[flat])));
                    }
                }
            }
        }
        for &addr in &touched {
            self.start_ready(addr, now, out);
        }
        self.touched_scratch = touched;
    }

    /// One dispatch round: ask the scheduler for commands and apply them.
    fn dispatch_round(&mut self, now: SimTime, out: &mut Vec<(SimTime, Ev)>) {
        let cmds = {
            let view = PlatformView::new(&self.platform, now);
            self.sched.dispatch(now, &view)
        };
        if !cmds.is_empty() {
            self.apply(cmds, now, out);
        }
    }

    /// Finalises a completed group: removes it from the queue, logs the
    /// learning cycle, and delivers the Eq. (8) reward feedback.
    fn complete_group(&mut self, addr: NodeAddr, group_id: GroupId, now: SimTime) {
        let qg = self
            .platform
            .remove_group(addr, group_id)
            .expect("group present");
        if let Some(o) = self.oracle.as_mut() {
            o.on_group_complete(group_id, now);
        }
        self.groups_completed += 1;
        self.cycle += 1;
        self.cycles.push(CycleSample {
            cycle: self.cycle,
            time: now.as_f64(),
            work_mi: self.finished_work,
        });
        let fb = GroupFeedback {
            group: group_id,
            node: addr,
            policy: qg.group.policy,
            size: qg.group.len(),
            reward: qg.met,
            pw: qg.pw,
            error: qg.assign_error,
            enqueued_at: qg.enqueued_at,
            first_start: qg.first_start,
            completed_at: now,
            split: qg.split_mode,
        };
        if self.t_dec {
            self.rec
                .span_end("group", group_id.0, now.as_f64(), self.track(addr));
            let st = self.platform.site_stats(addr.site);
            self.rec.gauge(
                &format!("queued.site{}", addr.site.0),
                now.as_f64(),
                st.queued_groups as f64,
            );
        }
        if let Some(m) = &self.mon {
            m.groups_completed.inc(m.shard);
        }
        if self.t_cyc {
            self.rec.counter_add("groups.completed", 1);
            self.rec.histogram("queue_wait_s", fb.wait_time());
            self.rec.event(
                "group_complete",
                now.as_f64(),
                self.track(addr),
                &[
                    ("cycle", Value::U64(self.cycle)),
                    ("site", Value::U64(addr.site.0 as u64)),
                    ("node", Value::U64(addr.node as u64)),
                    ("size", Value::U64(fb.size as u64)),
                    ("reward", Value::U64(fb.reward as u64)),
                    ("err", Value::F64(fb.error)),
                    ("wait_s", Value::F64(fb.wait_time())),
                    ("split", Value::Bool(fb.split)),
                ],
            );
        }
        self.sched.on_group_complete(now, &fb);
    }

    fn handle_task_done(
        &mut self,
        proc: ProcAddr,
        epoch: u32,
        now: SimTime,
        out: &mut Vec<(SimTime, Ev)>,
    ) {
        let flat = self.pidx(proc);
        if self.epochs[flat] != epoch {
            // The processor failed after this completion was scheduled; the
            // running task was preempted and the event is stale.
            return;
        }
        let addr = proc.node;
        let (task_id, group_id) = self.platform.finish_task_on(addr, proc.proc as usize, now);
        if let Some(o) = self.oracle.as_mut() {
            o.on_finish(task_id, flat, now);
        }
        let task = self.tasks[task_id.0 as usize];
        let met = now <= task.deadline;
        {
            let p = &mut self.partials[task_id.0 as usize];
            let started = p.started.expect("finished task must have started");
            debug_assert!(now > started, "execution takes positive time");
            self.finished_work += task.size_mi;
            p.finished = Some(now);
            p.met = met;
        }
        self.completed += 1;
        if met {
            self.met_count += 1;
        }
        if self.resolved() == self.tasks.len() {
            self.settled_at = now;
        }
        self.last_completion = now;
        if self.t_cyc {
            self.rec.counter_add("tasks.completed", 1);
            if met {
                self.rec.counter_add("tasks.met", 1);
            }
            self.rec
                .histogram("task_response_s", now.since(task.arrival).as_f64());
        }
        if let Some(m) = &self.mon {
            m.tasks_completed.inc(m.shard);
            if met {
                m.tasks_met.inc(m.shard);
            }
        }

        let complete = {
            let g = self
                .platform
                .node_mut(addr)
                .queue
                .find_mut(group_id)
                .expect("running group is queued");
            g.running -= 1;
            g.done += 1;
            if met {
                g.met += 1;
            }
            g.is_complete()
        };
        if complete {
            self.complete_group(addr, group_id, now);
        }
        self.start_ready(addr, now, out);
        self.dispatch_round(now, out);
    }

    /// Marks a task abandoned: failures exhausted its retry budget, or its
    /// site can never execute anything again.
    fn give_up(&mut self, task_id: TaskId, now: SimTime) {
        let p = &mut self.partials[task_id.0 as usize];
        debug_assert!(p.finished.is_none() && p.failed_at.is_none());
        p.failed_at = Some(now);
        self.failed_tasks += 1;
        if let Some(o) = self.oracle.as_mut() {
            o.on_give_up(task_id, now);
        }
        if self.resolved() == self.tasks.len() {
            self.settled_at = now;
        }
        if self.t_cyc {
            self.rec.counter_add("tasks.failed", 1);
        }
        if let Some(m) = &self.mon {
            m.tasks_failed.inc(m.shard);
        }
    }

    /// Re-dispatches tasks lost to a failure. Each orphan consumes one unit
    /// of its retry budget; tasks over budget (or stranded on a dead site)
    /// are abandoned. Survivors are handed back to their site agent with a
    /// recomputed priority: a task whose remaining slack has shrunk below
    /// half its original deadline budget escalates to `High` (§III.B —
    /// urgency rises as the deadline nears).
    fn process_orphans(&mut self, orphans: Vec<TaskId>, now: SimTime) {
        let max_retries = self.cfg.faults.max_retries;
        let mut by_site: HashMap<SiteId, Vec<Task>> = HashMap::new();
        let mut sites: Vec<SiteId> = Vec::new();
        for task_id in orphans {
            let task = self.tasks[task_id.0 as usize];
            let attempts = {
                let p = &mut self.partials[task_id.0 as usize];
                p.attempts += 1;
                p.attempts
            };
            let site_dead = self.site_perm_procs[task.site.0 as usize] == 0;
            if attempts > max_retries || site_dead {
                self.give_up(task_id, now);
                continue;
            }
            self.retries += 1;
            if self.t_cyc {
                self.rec.counter_add("tasks.retried", 1);
            }
            if let Some(m) = &self.mon {
                m.tasks_retried.inc(m.shard);
            }
            let mut t = task;
            let budget = task.deadline.since(task.arrival).as_f64();
            let slack = task.deadline.as_f64() - now.as_f64();
            if slack <= 0.5 * budget && t.priority < Priority::High {
                t.priority = Priority::High;
            }
            by_site.entry(t.site).or_insert_with(|| {
                sites.push(t.site);
                Vec::new()
            });
            by_site.get_mut(&t.site).expect("just inserted").push(t);
        }
        // Deterministic delivery order (HashMap iteration is not).
        for site in sites {
            let batch = by_site.remove(&site).expect("site recorded");
            self.sched.on_orphaned(now, site, batch);
        }
    }

    /// Applies planned fault `idx`: fails the target processor(s), preempts
    /// their running tasks, aborts groups a failure has stranded, and
    /// routes every lost task back through the re-dispatch path.
    fn handle_fault(&mut self, idx: usize, now: SimTime, out: &mut Vec<(SimTime, Ev)>) {
        if self.resolved() == self.tasks.len() {
            // Run already settled; let the remaining timeline drain without
            // disturbing post-makespan accounting.
            return;
        }
        let fault = self.plan[idx];
        let addr = fault.target.node();
        let permanent = fault.recover_at.is_none();
        let base = self.base(addr);
        let procs: Vec<usize> = match fault.target {
            FaultTarget::Proc(p) => vec![p.proc as usize],
            FaultTarget::Node(_) => (0..self.platform.node(addr).num_processors()).collect(),
        };
        self.faults_injected += 1;
        if let Some(m) = &self.mon {
            m.faults_injected.inc(m.shard);
        }
        let mut orphans: Vec<TaskId> = Vec::new();
        let mut touched_groups: Vec<GroupId> = Vec::new();
        for pi in procs {
            let flat = base + pi;
            // Record this outage window (overlapping outages max-merge).
            let end = match fault.recover_at {
                None => f64::INFINITY,
                Some(r) => r.as_f64(),
            };
            if self.offline_until[flat] < end {
                self.offline_until[flat] = end;
            }
            if self.platform.node(addr).processors[pi].is_failed() {
                continue;
            }
            self.epochs[flat] = self.epochs[flat].wrapping_add(1);
            let preempted = self.platform.fail_proc(addr, pi, now);
            if let Some(o) = self.oracle.as_mut() {
                o.on_proc_fail(flat, now);
            }
            if let Some((task_id, group_id)) = preempted {
                self.preemptions += 1;
                if self.t_cyc {
                    self.rec.counter_add("tasks.preempted", 1);
                }
                if let Some(m) = &self.mon {
                    m.tasks_preempted.inc(m.shard);
                }
                {
                    let g = self
                        .platform
                        .node_mut(addr)
                        .queue
                        .find_mut(group_id)
                        .expect("running group is queued");
                    g.running -= 1;
                    g.lost += 1;
                }
                if let Some(o) = self.oracle.as_mut() {
                    o.on_preempt(task_id, now);
                }
                let p = &mut self.partials[task_id.0 as usize];
                p.started = None;
                p.node = None;
                p.group = None;
                p.dispatched = None;
                p.split = false;
                orphans.push(task_id);
                if !touched_groups.contains(&group_id) {
                    touched_groups.push(group_id);
                }
            }
        }
        // Permanent-death accounting: recount the site's not-permanently-
        // failed processors (idempotent, so overlap handling stays simple).
        if permanent {
            let s = addr.site.0 as usize;
            let alive_total: usize = self.platform.sites[s]
                .nodes
                .iter()
                .map(|node| {
                    let b = self.proc_base[s][node.addr.node as usize];
                    (0..node.num_processors())
                        .filter(|&pi| !self.offline_until[b + pi].is_infinite())
                        .count()
                })
                .sum();
            self.site_perm_procs[s] = alive_total;
        }
        if self.t_cyc {
            self.rec.counter_add("faults.injected", 1);
            let (st, power) = self.site_snapshot(addr.site);
            let proc = match fault.target {
                FaultTarget::Proc(p) => p.proc as i64,
                FaultTarget::Node(_) => -1,
            };
            self.rec.event(
                "fault",
                now.as_f64(),
                self.track(addr),
                &[
                    ("site", Value::U64(addr.site.0 as u64)),
                    ("node", Value::U64(addr.node as u64)),
                    ("proc", Value::I64(proc)),
                    ("permanent", Value::Bool(permanent)),
                    ("preempted", Value::U64(orphans.len() as u64)),
                    ("site_failed", Value::U64(st.failed as u64)),
                    ("site_idle", Value::U64(st.idle as u64)),
                    ("site_queued", Value::U64(st.queued_groups as u64)),
                    ("site_power_w", Value::F64(power)),
                ],
            );
        }
        // Groups this fault completed by member loss: if any member did
        // finish, the reward feedback still flows; a group that lost every
        // member is aborted instead.
        for gid in touched_groups {
            let status = self
                .platform
                .node(addr)
                .queue
                .iter()
                .find(|g| g.group.id == gid)
                .map(|g| (g.is_complete(), g.done));
            if let Some((true, done)) = status {
                if done > 0 {
                    self.complete_group(addr, gid, now);
                } else {
                    self.abort_group(addr, gid, now, &mut orphans);
                }
            }
        }
        // Stranded sweep: queued groups on this node that can never run to
        // completion on what is left of it.
        self.sweep_stranded(addr, now, &mut orphans);
        self.process_orphans(orphans, now);
        // A dead site strands tasks still pending at the scheduler too.
        if self.cfg.faults.enabled {
            self.sweep_dead_site_pending(addr.site, now);
        }
        self.start_ready(addr, now, out);
        self.dispatch_round(now, out);
    }

    /// Removes a queued group destroyed by a failure. Members not yet
    /// resolved are appended to `orphans` for re-dispatch.
    fn abort_group(
        &mut self,
        addr: NodeAddr,
        gid: GroupId,
        now: SimTime,
        orphans: &mut Vec<TaskId>,
    ) {
        let qg = self
            .platform
            .remove_group(addr, gid)
            .expect("aborting a queued group");
        if let Some(o) = self.oracle.as_mut() {
            o.on_group_abort(gid, now);
        }
        for t in &qg.group.tasks {
            let p = &mut self.partials[t.id.0 as usize];
            // Finished members keep their records; members the preemption
            // loop already orphaned were detached (`group` cleared) there.
            if p.finished.is_none() && p.failed_at.is_none() && p.group == Some(gid) {
                p.node = None;
                p.group = None;
                p.dispatched = None;
                p.started = None;
                p.split = false;
                orphans.push(t.id);
                if let Some(o) = self.oracle.as_mut() {
                    o.on_detach(t.id, now);
                }
            }
        }
        self.groups_aborted += 1;
        if let Some(m) = &self.mon {
            m.groups_aborted.inc(m.shard);
        }
        if self.t_dec {
            // Close the dispatch span opened in `apply`: aborted groups
            // must not leave dangling async spans in the trace.
            self.rec
                .span_end("group", gid.0, now.as_f64(), self.track(addr));
        }
        if self.t_cyc {
            self.rec.counter_add("groups.aborted", 1);
            self.rec.event(
                "group_abort",
                now.as_f64(),
                self.track(addr),
                &[
                    ("site", Value::U64(addr.site.0 as u64)),
                    ("node", Value::U64(addr.node as u64)),
                    ("orphaned", Value::U64(qg.group.tasks.len() as u64)),
                ],
            );
        }
        self.sched.on_group_aborted(now, gid);
    }

    /// Aborts queued groups on `addr` that the node's surviving processor
    /// population can never finish: a never-started group needs its full
    /// width at once; a started group only needs one processor to drain.
    fn sweep_stranded(&mut self, addr: NodeAddr, now: SimTime, orphans: &mut Vec<TaskId>) {
        let base = self.base(addr);
        let perm_alive = {
            let n = self.platform.node(addr).num_processors();
            (0..n)
                .filter(|&pi| !self.offline_until[base + pi].is_infinite())
                .count()
        };
        let stranded: Vec<GroupId> = self
            .platform
            .node(addr)
            .queue
            .iter()
            .filter(|g| {
                if g.running > 0 || g.is_complete() {
                    return false;
                }
                let needed = if g.has_started() { 1 } else { g.group.len() };
                perm_alive < needed
            })
            .map(|g| g.group.id)
            .collect();
        for gid in stranded {
            self.abort_group(addr, gid, now, orphans);
        }
    }

    /// When a site has permanently lost all processors, tasks still pending
    /// at the scheduler (arrived, never resolved, not currently in any
    /// group) can never run: fail them now so the run terminates.
    fn sweep_dead_site_pending(&mut self, site: SiteId, now: SimTime) {
        if self.site_perm_procs[site.0 as usize] > 0 {
            return;
        }
        for i in 0..self.tasks.len() {
            let t = self.tasks[i];
            if t.site != site || t.arrival > now {
                continue;
            }
            let p = &self.partials[i];
            if p.finished.is_none() && p.failed_at.is_none() && p.group.is_none() {
                self.give_up(t.id, now);
            }
        }
    }

    /// Applies planned recovery `idx`: brings the processor back online
    /// unless a later overlapping outage supersedes this one.
    fn handle_recover(&mut self, idx: usize, now: SimTime, out: &mut Vec<(SimTime, Ev)>) {
        if self.resolved() == self.tasks.len() {
            return;
        }
        let fault = self.plan[idx];
        let addr = fault.target.node();
        let base = self.base(addr);
        let procs: Vec<usize> = match fault.target {
            FaultTarget::Proc(p) => vec![p.proc as usize],
            FaultTarget::Node(_) => (0..self.platform.node(addr).num_processors()).collect(),
        };
        let mut any = false;
        for pi in procs {
            let flat = base + pi;
            // Skip when a longer overlapping outage owns this processor.
            if self.offline_until[flat] > now.as_f64() + 1e-9 {
                continue;
            }
            if self.platform.node(addr).processors[pi].is_failed() {
                self.platform.recover_proc(addr, pi, now);
                if let Some(o) = self.oracle.as_mut() {
                    o.on_proc_recover(flat, now);
                }
                any = true;
            }
        }
        if !any {
            return;
        }
        // One planned outage = one recovery, matching `faults_injected`
        // units (a node event counts once, not once per processor).
        self.faults_recovered += 1;
        if let Some(m) = &self.mon {
            m.faults_recovered.inc(m.shard);
        }
        if self.t_cyc {
            self.rec.counter_add("faults.recovered", 1);
            let (st, power) = self.site_snapshot(addr.site);
            self.rec.event(
                "recover",
                now.as_f64(),
                self.track(addr),
                &[
                    ("site", Value::U64(addr.site.0 as u64)),
                    ("node", Value::U64(addr.node as u64)),
                    ("site_failed", Value::U64(st.failed as u64)),
                    ("site_idle", Value::U64(st.idle as u64)),
                    ("site_queued", Value::U64(st.queued_groups as u64)),
                    ("site_power_w", Value::F64(power)),
                ],
            );
        }
        self.start_ready(addr, now, out);
        self.dispatch_round(now, out);
    }
}

impl<S: Scheduler> Simulation for Driver<'_, S> {
    type Event = Ev;

    fn on_event(&mut self, now: SimTime, event: Ev, handle: &mut EngineHandle<'_, Ev>) -> bool {
        if now.as_f64() > self.cfg.max_time {
            return false;
        }
        self.events_seen += 1;
        if let Some(m) = &self.mon {
            m.events.inc(m.shard);
        }
        if let Some(o) = self.oracle.as_mut() {
            o.on_event(now);
        }
        // One reusable buffer for the whole event — handlers append, the
        // tail loop schedules, and the (cleared) capacity carries over to
        // the next event instead of reallocating.
        let mut out = std::mem::take(&mut self.ev_scratch);
        out.clear();
        match event {
            Ev::Arrival(idx) => {
                let task = self.tasks[idx as usize];
                if let Some(o) = self.oracle.as_mut() {
                    o.on_arrival(task.id, now);
                }
                if self.cfg.faults.enabled && self.site_perm_procs[task.site.0 as usize] == 0 {
                    // The site permanently lost every processor before this
                    // task arrived: nothing can ever run it.
                    self.give_up(task.id, now);
                } else {
                    self.sched.on_arrivals(now, task.site, vec![task]);
                    self.dispatch_round(now, &mut out);
                }
            }
            Ev::TaskDone(proc, epoch) => self.handle_task_done(proc, epoch, now, &mut out),
            Ev::WakeDone(proc, epoch) => {
                let settled = !self.tasks.is_empty() && self.resolved() == self.tasks.len();
                if self.epochs[self.pidx(proc)] != epoch || settled {
                    // The processor failed mid-wake (stale epoch), or the
                    // run already settled: freeze the transition. The
                    // energy horizon reads at settlement, and applying
                    // post-settlement transitions would fold the interval
                    // beyond it back into the accumulators (`SimTime::
                    // since` saturates, so `energy_at(horizon)` after a
                    // later transition overcounts the tail).
                } else {
                    self.platform
                        .finish_wake_proc(proc.node, proc.proc as usize, now);
                    if self.oracle.is_some() {
                        let flat = self.pidx(proc);
                        if let Some(o) = self.oracle.as_mut() {
                            o.on_wake_end(flat, now);
                        }
                    }
                    self.start_ready(proc.node, now, &mut out);
                }
            }
            Ev::Fault(idx) => self.handle_fault(idx as usize, now, &mut out),
            Ev::Recover(idx) => self.handle_recover(idx as usize, now, &mut out),
            Ev::Tick => {
                let settled = !self.tasks.is_empty() && self.resolved() == self.tasks.len();
                if !settled {
                    // Post-settlement ticks are frozen for the same
                    // accounting reason as wake transitions: an `on_tick`
                    // sleep/throttle command would settle processors past
                    // the energy horizon.
                    let cmds = {
                        let view = PlatformView::new(&self.platform, now);
                        self.sched.on_tick(now, &view)
                    };
                    if !cmds.is_empty() {
                        self.apply(cmds, now, &mut out);
                    }
                    self.dispatch_round(now, &mut out);
                    if self.progress_on {
                        self.emit_progress(now);
                    }
                    if self.mon.is_some() || self.sampler.is_some() {
                        self.monitor_tick(now, false);
                    }
                    if let Some(o) = self.oracle.as_mut() {
                        o.sweep(&self.platform, now);
                    }
                    if self.resolved() < self.tasks.len() {
                        handle.schedule_in(SimDuration::new(self.cfg.tick_interval), Ev::Tick);
                    }
                }
            }
        }
        for &(t, ev) in &out {
            handle.schedule_at(t, ev);
        }
        self.ev_scratch = out;
        true
    }
}

/// Runs one scheduler over one platform and task stream.
///
/// ```
/// use platform::{ExecConfig, ExecEngine, Platform, PlatformSpec};
/// use platform::{Command, GroupPolicy, PlatformView, Scheduler};
/// use simcore::rng::RngStream;
/// use simcore::SimTime;
/// use workload::{SiteId, Task, Workload, WorkloadSpec};
///
/// // A two-line FCFS policy…
/// struct Fcfs(Vec<Task>);
/// impl Scheduler for Fcfs {
///     fn name(&self) -> &str { "fcfs" }
///     fn on_arrivals(&mut self, _: SimTime, _: SiteId, tasks: Vec<Task>) {
///         self.0.extend(tasks);
///     }
///     fn dispatch(&mut self, _: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
///         let mut cmds = Vec::new();
///         let mut kept = Vec::new();
///         for t in self.0.drain(..) {
///             match view.site_nodes(t.site).find(|n| n.queue_available() > 0) {
///                 Some(n) => cmds.push(Command::Dispatch {
///                     node: n.addr(), tasks: vec![t], policy: GroupPolicy::Mixed,
///                 }),
///                 None => kept.push(t),
///             }
///         }
///         self.0 = kept;
///         cmds
///     }
/// }
///
/// // …run against a generated platform and workload.
/// let rng = RngStream::root(1);
/// let platform = Platform::generate(PlatformSpec::small(1, 2, 4), &rng.derive("p"));
/// let wl = Workload::generate(WorkloadSpec::paper(50, 1, platform.reference_speed()),
///                             &rng.derive("w"));
/// let mut sched = Fcfs(Vec::new());
/// let result = ExecEngine::new(ExecConfig::default()).run(platform, wl.tasks, &mut sched);
/// assert_eq!(result.incomplete, 0);
/// assert!(result.total_energy > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecEngine {
    /// Engine configuration.
    pub cfg: ExecConfig,
    /// Scripted fault timeline. When set, it overrides the generated plan
    /// (and is honoured even with `cfg.faults.enabled == false` randomness
    /// knobs, as long as `enabled` is true).
    fault_plan: Option<FaultPlan>,
    /// Live metric handles the run publishes into (strictly observing).
    monitor: Option<Arc<LiveMetrics>>,
    /// Time-series sampler cadence; `None` disables sampling.
    sampler: Option<SamplerConfig>,
    /// Phase profiler for `--profile` runs (strictly observing).
    profiler: Option<Arc<PhaseProfiler>>,
}

impl ExecEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: ExecConfig) -> Self {
        ExecEngine {
            cfg,
            fault_plan: None,
            monitor: None,
            sampler: None,
            profiler: None,
        }
    }

    /// Replaces the MTBF-generated fault timeline with a scripted one
    /// (tests and what-if experiments). Implies nothing about
    /// `cfg.faults.enabled`; set that too or the plan is ignored.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Publishes live run state into `monitor`'s pre-registered metric
    /// handles. Strictly observing: scheduling decisions, RNG draws and
    /// every `RunResult` field except diagnostics are bit-identical with
    /// the monitor on or off.
    pub fn with_monitor(mut self, monitor: Arc<LiveMetrics>) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Samples a [`TimePoint`] on the given cadence; the series lands in
    /// [`RunResult::timeseries`]. Strictly observing, like the monitor.
    pub fn with_sampler(mut self, cfg: SamplerConfig) -> Self {
        self.sampler = Some(cfg);
        self
    }

    /// Accumulates per-phase wall-clock timings into `profiler`. The
    /// engine loop switches to its profiled variant (event pop / handle
    /// timing); downstream layers time their own phases into the same
    /// profiler. Strictly observing.
    pub fn with_profiler(mut self, profiler: Arc<PhaseProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// The attached profiler, if any (shared with [`crate::checkpoint`]).
    pub(crate) fn profiler(&self) -> Option<&PhaseProfiler> {
        self.profiler.as_deref()
    }

    /// Runs the simulation to completion and collects the results.
    ///
    /// # Panics
    /// Panics if task ids are not dense from 0 (as the workload generator
    /// produces them).
    pub fn run<S: Scheduler>(
        &self,
        platform: Platform,
        tasks: Vec<Task>,
        sched: &mut S,
    ) -> RunResult {
        // The no-op recorder wants no level, so every telemetry gate in
        // the driver resolves to `false` and this path stays identical to
        // the pre-telemetry engine (pinned by `golden_determinism` and
        // the throughput baseline).
        self.run_traced(platform, tasks, sched, &telemetry::NULL)
    }

    /// [`ExecEngine::run`] with a telemetry [`Recorder`] attached.
    ///
    /// The recorder observes dispatch/finish spans, fault/recovery
    /// markers with per-site queue-depth and power snapshots, queue-wait
    /// and response-time histograms, and (at [`TraceLevel::All`]) the
    /// per-event engine firehose. The caller owns sink finalisation
    /// (`rec.finish()`).
    pub fn run_traced<S: Scheduler>(
        &self,
        platform: Platform,
        tasks: Vec<Task>,
        sched: &mut S,
        rec: &dyn Recorder,
    ) -> RunResult {
        let (mut driver, mut engine) = self.prepare(platform, tasks, sched, rec);
        let outcome = if rec.wants(TraceLevel::All) {
            engine.run_traced(&mut driver, rec, |ev| match ev {
                Ev::Arrival(_) => "arrival",
                Ev::TaskDone(..) => "task_done",
                Ev::WakeDone(..) => "wake_done",
                Ev::Tick => "tick",
                Ev::Fault(_) => "fault",
                Ev::Recover(_) => "recover",
            })
        } else if let Some(prof) = &self.profiler {
            engine.run_profiled(&mut driver, prof)
        } else {
            engine.run(&mut driver)
        };
        if driver.progress_on {
            // Final snapshot so short runs print at least one line.
            driver.emit_progress(engine.now());
        }
        if driver.mon.is_some() || driver.sampler.is_some() {
            // Close the series at the run's end so the last sample always
            // reflects the final energy/task totals.
            driver.monitor_tick(engine.now(), true);
        }
        let events_processed = engine.processed();
        let max_queue_occupancy = engine.queue().max_occupancy();
        assemble_result(driver, outcome, events_processed, max_queue_occupancy)
    }

    /// Builds the driver and a primed engine — the shared front half of
    /// [`ExecEngine::run_traced`] and the checkpointing run in
    /// [`crate::checkpoint`]. Both paths must produce bit-identical
    /// initial state for checkpoint/restore determinism to hold.
    pub(crate) fn prepare<'s, S: Scheduler>(
        &self,
        platform: Platform,
        tasks: Vec<Task>,
        sched: &'s mut S,
        rec: &'s dyn Recorder,
    ) -> (Driver<'s, S>, Engine<Ev>) {
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id.0, i as u64, "task ids must be dense from 0");
        }
        let total_procs = platform.num_processors();
        let num_tasks = tasks.len();
        self.cfg.faults.validate();
        let plan = if self.cfg.faults.enabled {
            match &self.fault_plan {
                Some(p) => p.clone(),
                None if self.cfg.faults.is_active() => FaultPlan::generate(
                    &self.cfg.faults,
                    &platform,
                    &RngStream::root(self.cfg.faults.seed),
                ),
                None => FaultPlan::empty(),
            }
        } else {
            FaultPlan::empty()
        };
        let (proc_base, node_track, flat) = proc_layout(&platform);
        let mut site_perm_procs = vec![0usize; platform.num_sites()];
        for site in &platform.sites {
            for node in &site.nodes {
                site_perm_procs[node.addr.site.0 as usize] += node.num_processors();
            }
        }
        let oracle = if self.cfg.audit {
            Some(Box::new(Oracle::new(&platform, num_tasks)))
        } else {
            None
        };
        let driver = Driver {
            platform,
            partials: vec![Partial::default(); num_tasks],
            tasks,
            sched,
            cfg: self.cfg,
            completed: 0,
            finished_work: 0.0,
            cycles: Vec::new(),
            cycle: 0,
            next_group: 0,
            groups_dispatched: 0,
            groups_completed: 0,
            split_starts: 0,
            rejections: 0,
            last_completion: SimTime::ZERO,
            plan: plan.events,
            proc_base,
            epochs: vec![0; flat],
            offline_until: vec![0.0; flat],
            site_perm_procs,
            failed_tasks: 0,
            faults_injected: 0,
            faults_recovered: 0,
            preemptions: 0,
            retries: 0,
            groups_aborted: 0,
            touched_scratch: Vec::new(),
            ev_scratch: Vec::new(),
            rec,
            t_cyc: rec.wants(TraceLevel::Cycles),
            t_dec: rec.wants(TraceLevel::Decisions),
            progress_on: rec.wants_progress(),
            wall_start: std::time::Instant::now(),
            events_seen: 0,
            met_count: 0,
            node_track,
            mon: self.monitor.clone(),
            sampler: self
                .sampler
                .map(|s| TimeSeriesRing::new(s.every, s.capacity)),
            oracle,
            settled_at: SimTime::ZERO,
        };
        // Peak event-queue occupancy: every arrival is primed upfront, the
        // fault plan adds at most one fault + one recovery per entry, at
        // most one TaskDone/WakeDone can be in flight per processor, and a
        // single Tick is outstanding at any time.
        let queue_cap = num_tasks + 2 * driver.plan.len() + total_procs + 2;
        let mut engine = Engine::new()
            .with_queue_capacity(queue_cap)
            .with_fuse(self.cfg.fuse);
        for (i, t) in driver.tasks.iter().enumerate() {
            engine.prime(t.arrival, Ev::Arrival(i as u32));
        }
        engine.prime(SimTime::new(self.cfg.tick_interval), Ev::Tick);
        for (i, f) in driver.plan.iter().enumerate() {
            engine.prime(f.at, Ev::Fault(i as u32));
            if let Some(r) = f.recover_at {
                engine.prime(r, Ev::Recover(i as u32));
            }
        }
        (driver, engine)
    }
}

/// Collapses a finished [`Driver`] into the public [`RunResult`] — the
/// shared back half of [`ExecEngine::run_traced`] and the resume path in
/// [`crate::checkpoint`].
pub(crate) fn assemble_result<S: Scheduler>(
    driver: Driver<'_, S>,
    outcome: RunOutcome,
    events_processed: u64,
    max_queue_occupancy: usize,
) -> RunResult {
    assemble_result_at(driver, outcome, events_processed, max_queue_occupancy, None)
}

/// [`assemble_result`] with an optional energy/utilisation horizon
/// override. Sharded runs finalise every shard at the *global* horizon —
/// the instant the last shard settled — so per-site energy integrals sum
/// to the whole cluster's draw over one common interval.
pub(crate) fn assemble_result_at<S: Scheduler>(
    mut driver: Driver<'_, S>,
    outcome: RunOutcome,
    events_processed: u64,
    max_queue_occupancy: usize,
    horizon_override: Option<SimTime>,
) -> RunResult {
    let total_procs = driver.platform.num_processors();
    let total_mips: f64 = driver
        .platform
        .sites
        .iter()
        .flat_map(|s| &s.nodes)
        .map(|n| n.raw_speed())
        .sum();
    let spec = driver.platform.spec.clone();
    let num_tasks = driver.tasks.len();
    let arrival_horizon = driver
        .tasks
        .iter()
        .map(|t| t.arrival.as_f64())
        .fold(0.0_f64, f64::max);
    let name = driver.sched.name().to_string();
    let rec = driver.rec;

    let makespan = driver.last_completion;
    // Energy/utilisation horizon: for a fully resolved run, the later
    // of the last completion and the settlement instant — a failure
    // path can abandon its final task *after* the last completion,
    // and the platform keeps drawing idle power until then. (On an
    // all-failed run `makespan` is zero but energy was still burned.)
    // Unresolved runs (`Stopped`/`FuseBlown`) read at the makespan as
    // before.
    let resolved_all = !driver.tasks.is_empty() && driver.resolved() == driver.tasks.len();
    let horizon = horizon_override.unwrap_or(if resolved_all {
        driver.settled_at.max(makespan)
    } else {
        makespan
    });
    let total_energy = driver.platform.total_energy_at(horizon);
    let mean_utilisation = driver.platform.mean_utilisation_at(horizon);
    let audit = driver.oracle.take().map(|o| {
        let totals = RunTotals {
            num_tasks,
            completed: driver.completed,
            failed: driver.failed_tasks,
            groups_dispatched: driver.groups_dispatched,
            groups_completed: driver.groups_completed,
            groups_aborted: driver.groups_aborted,
            reported_energy: total_energy,
            drained: matches!(outcome, RunOutcome::Drained),
        };
        o.finalize(&driver.platform, horizon, &totals)
    });
    let records: Vec<TaskRecord> = driver
        .partials
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let task = driver.tasks[i];
            if let Some(finished) = p.finished {
                Some(TaskRecord {
                    task: task.id,
                    site: task.site,
                    node: p.node.expect("finished implies dispatched"),
                    group: p.group.expect("finished implies grouped"),
                    priority: task.priority,
                    size_mi: task.size_mi,
                    arrival: task.arrival,
                    dispatched: p.dispatched.expect("finished implies dispatched"),
                    started: p.started.expect("finished implies started"),
                    finished,
                    deadline: task.deadline,
                    met: p.met,
                    split: p.split,
                    outcome: if p.met {
                        TaskOutcome::Met
                    } else {
                        TaskOutcome::Missed
                    },
                    attempts: p.attempts,
                })
            } else {
                let failed_at = p.failed_at?;
                Some(TaskRecord {
                    task: task.id,
                    site: task.site,
                    node: p.node.unwrap_or(NodeAddr {
                        site: task.site,
                        node: 0,
                    }),
                    group: p.group.unwrap_or(GroupId::NONE),
                    priority: task.priority,
                    size_mi: task.size_mi,
                    arrival: task.arrival,
                    dispatched: p.dispatched.unwrap_or(failed_at),
                    started: p.started.unwrap_or(failed_at),
                    finished: failed_at,
                    deadline: task.deadline,
                    met: false,
                    split: p.split,
                    outcome: TaskOutcome::Failed,
                    attempts: p.attempts,
                })
            }
        })
        .collect();
    let incomplete = num_tasks - records.len();
    let mut result = RunResult {
        scheduler: name,
        incomplete,
        num_tasks,
        makespan: makespan.as_f64(),
        total_energy,
        mean_utilisation,
        cycles: driver.cycles,
        groups_dispatched: driver.groups_dispatched,
        groups_completed: driver.groups_completed,
        split_starts: driver.split_starts,
        rejections: driver.rejections,
        tasks_failed: driver.failed_tasks,
        groups_aborted: driver.groups_aborted,
        faults_injected: driver.faults_injected,
        faults_recovered: driver.faults_recovered,
        preemptions: driver.preemptions,
        retries: driver.retries,
        total_procs,
        total_mips,
        arrival_horizon,
        platform_spec: spec,
        records,
        outcome: format!("{outcome:?}"),
        events_processed,
        max_queue_occupancy,
        timeseries: driver.sampler.take().map(TimeSeriesRing::into_log),
        telemetry: rec.summary(),
        audit: None,
    };
    if let Some(mut report) = audit {
        // Fold in the record-level post-hoc pass so `--audit` covers
        // the assembled result too, not just the live run.
        report.merge(crate::oracle::audit_result(&result));
        result.audit = Some(report);
    }
    result
}

/// Formats a [`RunOutcome`] (re-exported for harness assertions).
pub fn outcome_name(o: RunOutcome) -> &'static str {
    match o {
        RunOutcome::Drained => "Drained",
        RunOutcome::Stopped => "Stopped",
        RunOutcome::FuseBlown => "FuseBlown",
        RunOutcome::Paused => "Paused",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupPolicy;
    use crate::topology::PlatformSpec;
    use simcore::rng::RngStream;
    use workload::{Workload, WorkloadSpec};

    /// Minimal FCFS scheduler: dispatches each task alone to the node with
    /// the most free queue slots in its site.
    struct Fcfs {
        pending: Vec<Task>,
    }

    impl Scheduler for Fcfs {
        fn name(&self) -> &str {
            "fcfs-test"
        }
        fn on_arrivals(&mut self, _now: SimTime, _site: SiteId, tasks: Vec<Task>) {
            self.pending.extend(tasks);
        }
        fn dispatch(&mut self, _now: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
            let mut cmds = Vec::new();
            let mut remaining = Vec::new();
            for task in self.pending.drain(..) {
                let best = view
                    .site_nodes(task.site)
                    .filter(|n| n.queue_available() > 0)
                    .max_by(|a, b| a.queue_available().cmp(&b.queue_available()));
                match best {
                    Some(n) => cmds.push(Command::Dispatch {
                        node: n.addr(),
                        tasks: vec![task],
                        policy: GroupPolicy::Mixed,
                    }),
                    None => remaining.push(task),
                }
            }
            self.pending = remaining;
            cmds
        }
    }

    fn run_fcfs(n_tasks: usize, split: bool) -> RunResult {
        let rng = RngStream::root(11);
        let platform = Platform::generate(PlatformSpec::small(2, 3, 4), &rng.derive("p"));
        let wl = Workload::generate(
            WorkloadSpec::paper(n_tasks, 2, platform.reference_speed()),
            &rng.derive("w"),
        );
        let mut sched = Fcfs {
            pending: Vec::new(),
        };
        let engine = ExecEngine::new(ExecConfig {
            split_enabled: split,
            ..ExecConfig::default()
        });
        engine.run(platform, wl.tasks, &mut sched)
    }

    #[test]
    fn all_tasks_complete() {
        let r = run_fcfs(200, true);
        assert_eq!(r.incomplete, 0);
        assert_eq!(r.records.len(), 200);
        assert_eq!(r.groups_completed, r.groups_dispatched);
        assert!(r.makespan > 0.0);
        assert_eq!(r.outcome, "Drained");
    }

    #[test]
    fn records_are_causally_ordered() {
        let r = run_fcfs(150, true);
        for rec in &r.records {
            assert!(rec.dispatched >= rec.arrival, "dispatch before arrival");
            assert!(rec.started >= rec.dispatched, "start before dispatch");
            assert!(rec.finished > rec.started, "finish before start");
            assert!(rec.response_time() > 0.0);
            assert_eq!(rec.met, rec.finished <= rec.deadline);
        }
    }

    #[test]
    fn energy_is_positive_and_bounded() {
        let r = run_fcfs(100, true);
        // Lower bound: every proc idling the whole run.
        // Upper bound: every proc at global peak (95 W) the whole run.
        // Node energy is the per-proc mean, so ECS sums node counts.
        let nodes = 6.0;
        let lo = 48.0 * r.makespan * nodes * 0.99;
        let hi = 95.0 * r.makespan * nodes * 1.01;
        assert!(
            r.total_energy > lo && r.total_energy < hi,
            "energy {} not in [{lo}, {hi}]",
            r.total_energy
        );
    }

    #[test]
    fn utilisation_in_unit_range() {
        let r = run_fcfs(100, true);
        assert!(r.mean_utilisation > 0.0 && r.mean_utilisation <= 1.0);
    }

    /// Runs the `run_fcfs` scenario with a monitor, sampler and profiler
    /// attached.
    fn run_fcfs_monitored() -> (RunResult, std::sync::Arc<telemetry::MetricsRegistry>) {
        let rng = RngStream::root(11);
        let platform = Platform::generate(PlatformSpec::small(2, 3, 4), &rng.derive("p"));
        let wl = Workload::generate(
            WorkloadSpec::paper(200, 2, platform.reference_speed()),
            &rng.derive("w"),
        );
        let mut sched = Fcfs {
            pending: Vec::new(),
        };
        let reg = std::sync::Arc::new(telemetry::MetricsRegistry::new());
        let mon = crate::monitor::LiveMetrics::register(&reg, platform.num_sites(), 0);
        let engine = ExecEngine::new(ExecConfig::default())
            .with_monitor(mon)
            .with_sampler(crate::monitor::SamplerConfig {
                every: 20.0,
                capacity: 1024,
            })
            .with_profiler(std::sync::Arc::new(telemetry::PhaseProfiler::new()));
        (engine.run(platform, wl.tasks, &mut sched), reg)
    }

    #[test]
    fn monitoring_is_inert() {
        let plain = run_fcfs(200, true);
        let (monitored, _) = run_fcfs_monitored();
        assert_eq!(
            crate::oracle::replay_divergence(&plain, &monitored),
            None,
            "attaching monitor/sampler/profiler must not change the run"
        );
        assert!(plain.timeseries.is_none());
    }

    #[test]
    fn monitored_run_publishes_metrics_and_timeseries() {
        let (r, reg) = run_fcfs_monitored();
        let text = reg.render();
        assert!(
            text.contains(&format!("arls_tasks_completed_total {}", r.records.len())),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "arls_groups_completed_total {}",
                r.groups_completed
            )),
            "{text}"
        );
        assert!(text.contains("arls_site_power_watts{site=\"1\"}"), "{text}");
        let ts = r.timeseries.as_ref().expect("sampler attached");
        assert_eq!(ts.sample_every, 20.0);
        assert!(!ts.points.is_empty());
        // Monotone sample times; the final point carries the run's end
        // state, so its cumulative counters match the result.
        for w in ts.points.windows(2) {
            assert!(w[0].t < w[1].t, "sample times must be strictly increasing");
        }
        let last = ts.points.last().unwrap();
        assert_eq!(last.done as usize + last.failed as usize, r.num_tasks);
        assert!(last.energy_j > 0.0);
        assert_eq!(last.sites.len(), 2);
    }

    #[test]
    fn cycles_are_monotone() {
        let r = run_fcfs(120, true);
        assert_eq!(r.cycles.len() as u64, r.groups_completed);
        for w in r.cycles.windows(2) {
            assert!(w[1].cycle == w[0].cycle + 1);
            assert!(w[1].time >= w[0].time);
            assert!(w[1].work_mi >= w[0].work_mi);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_fcfs(100, true);
        let b = run_fcfs(100, true);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_energy, b.total_energy);
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn single_task_groups_make_split_irrelevant() {
        // With one task per group, the split path never triggers.
        let r = run_fcfs(100, true);
        assert_eq!(r.split_starts, 0);
    }

    /// Scheduler that merges all pending site tasks into one group of up to
    /// 4 to exercise batch starts and splits.
    struct Grouper {
        pending: Vec<Task>,
    }

    impl Scheduler for Grouper {
        fn name(&self) -> &str {
            "grouper-test"
        }
        fn on_arrivals(&mut self, _now: SimTime, _site: SiteId, tasks: Vec<Task>) {
            self.pending.extend(tasks);
        }
        fn dispatch(&mut self, _now: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
            let mut cmds = Vec::new();
            let mut used_slots: Vec<(NodeAddr, usize)> = Vec::new();
            while !self.pending.is_empty() {
                let site = self.pending[0].site;
                let mut group = Vec::new();
                let mut rest = Vec::new();
                for t in self.pending.drain(..) {
                    if t.site == site && group.len() < 4 {
                        group.push(t);
                    } else {
                        rest.push(t);
                    }
                }
                self.pending = rest;
                let slots_used = |addr: NodeAddr, used: &[(NodeAddr, usize)]| {
                    used.iter()
                        .find(|(a, _)| *a == addr)
                        .map(|(_, c)| *c)
                        .unwrap_or(0)
                };
                let best = view
                    .site_nodes(site)
                    .filter(|n| {
                        n.queue_available() > slots_used(n.addr(), &used_slots)
                            && n.num_processors() >= group.len()
                    })
                    .max_by(|a, b| {
                        // total_cmp: a NaN capacity must not panic the
                        // selection mid-run.
                        a.processing_capacity().total_cmp(&b.processing_capacity())
                    });
                match best {
                    Some(n) => {
                        let addr = n.addr();
                        match used_slots.iter_mut().find(|(a, _)| *a == addr) {
                            Some((_, c)) => *c += 1,
                            None => used_slots.push((addr, 1)),
                        }
                        cmds.push(Command::Dispatch {
                            node: addr,
                            tasks: group,
                            policy: GroupPolicy::Mixed,
                        });
                    }
                    None => {
                        // No room anywhere: keep the tasks pending.
                        self.pending.extend(group);
                        break;
                    }
                }
            }
            cmds
        }
    }

    #[test]
    fn grouped_execution_completes_and_splits() {
        let rng = RngStream::root(21);
        let platform = Platform::generate(PlatformSpec::small(1, 2, 4), &rng.derive("p"));
        let mut spec = WorkloadSpec::paper(300, 1, platform.reference_speed());
        spec.mean_interarrival = 0.4; // oversubscribe to force queueing and grouping
        let wl = Workload::generate(spec, &rng.derive("w"));
        let mut sched = Grouper {
            pending: Vec::new(),
        };
        let engine = ExecEngine::new(ExecConfig::default());
        let r = engine.run(platform, wl.tasks, &mut sched);
        assert_eq!(r.incomplete, 0, "outcome {}", r.outcome);
        assert!(
            r.split_starts > 0,
            "heavy grouped load should trigger splits"
        );
        assert!(
            r.groups_dispatched < 300,
            "tasks should actually be grouped"
        );
    }

    #[test]
    fn split_disabled_never_splits() {
        let rng = RngStream::root(21);
        let platform = Platform::generate(PlatformSpec::small(1, 2, 4), &rng.derive("p"));
        let mut spec = WorkloadSpec::paper(300, 1, platform.reference_speed());
        spec.mean_interarrival = 1.0;
        let wl = Workload::generate(spec, &rng.derive("w"));
        let mut sched = Grouper {
            pending: Vec::new(),
        };
        let engine = ExecEngine::new(ExecConfig {
            split_enabled: false,
            ..ExecConfig::default()
        });
        let r = engine.run(platform, wl.tasks, &mut sched);
        assert_eq!(r.incomplete, 0);
        assert_eq!(r.split_starts, 0);
        for rec in &r.records {
            assert!(!rec.split);
        }
    }

    #[test]
    fn split_improves_throughput_under_load() {
        let mk = |split: bool| {
            let rng = RngStream::root(33);
            let platform = Platform::generate(PlatformSpec::small(1, 2, 5), &rng.derive("p"));
            let mut spec = WorkloadSpec::paper(400, 1, platform.reference_speed());
            spec.mean_interarrival = 0.8;
            let wl = Workload::generate(spec, &rng.derive("w"));
            let mut sched = Grouper {
                pending: Vec::new(),
            };
            ExecEngine::new(ExecConfig {
                split_enabled: split,
                ..ExecConfig::default()
            })
            .run(platform, wl.tasks, &mut sched)
        };
        let with = mk(true);
        let without = mk(false);
        assert!(
            with.avg_response_time() <= without.avg_response_time(),
            "split should not hurt response time: {} vs {}",
            with.avg_response_time(),
            without.avg_response_time()
        );
    }

    // ---- fault injection ----

    fn outcome_partition(r: &RunResult) {
        assert_eq!(
            r.records.len(),
            r.num_tasks,
            "every arrived task must end in exactly one record"
        );
        assert_eq!(r.incomplete, 0, "no task may be lost");
        let met = r
            .records
            .iter()
            .filter(|x| x.outcome == TaskOutcome::Met)
            .count();
        let missed = r
            .records
            .iter()
            .filter(|x| x.outcome == TaskOutcome::Missed)
            .count();
        let failed = r
            .records
            .iter()
            .filter(|x| x.outcome == TaskOutcome::Failed)
            .count();
        assert_eq!(met + missed + failed, r.num_tasks);
        assert_eq!(failed, r.tasks_failed);
        for rec in &r.records {
            assert_eq!(rec.met, rec.outcome == TaskOutcome::Met);
        }
    }

    fn grouper_run(faults: FaultSpec, plan: Option<FaultPlan>) -> RunResult {
        let rng = RngStream::root(21);
        let platform = Platform::generate(PlatformSpec::small(1, 2, 4), &rng.derive("p"));
        let mut spec = WorkloadSpec::paper(300, 1, platform.reference_speed());
        spec.mean_interarrival = 0.4; // oversubscribe to force queueing and splits
        let wl = Workload::generate(spec, &rng.derive("w"));
        let mut sched = Grouper {
            pending: Vec::new(),
        };
        let mut engine = ExecEngine::new(ExecConfig {
            faults,
            ..ExecConfig::default()
        });
        if let Some(p) = plan {
            engine = engine.with_fault_plan(p);
        }
        engine.run(platform, wl.tasks, &mut sched)
    }

    #[test]
    fn disabled_faults_are_bit_identical() {
        let base = grouper_run(FaultSpec::default(), None);
        // Knobs set but master switch off: provably zero impact.
        let knobs = grouper_run(
            FaultSpec {
                enabled: false,
                proc_mtbf: 10.0,
                node_mtbf: 20.0,
                ..FaultSpec::default()
            },
            None,
        );
        assert_eq!(base.makespan, knobs.makespan);
        assert_eq!(base.total_energy, knobs.total_energy);
        assert_eq!(base.records, knobs.records);
        assert_eq!(knobs.faults_injected, 0);
        assert_eq!(knobs.tasks_failed, 0);
        assert_eq!(knobs.preemptions, 0);
    }

    #[test]
    fn failure_during_split_conserves_tasks() {
        // A whole-node outage plus a single-processor outage land while the
        // oversubscribed Grouper workload is splitting groups.
        let plan = FaultPlan::from_events(vec![
            PlannedFault {
                at: SimTime::new(30.0),
                target: FaultTarget::Node(NodeAddr::new(0, 0)),
                recover_at: Some(SimTime::new(60.0)),
            },
            PlannedFault {
                at: SimTime::new(45.0),
                target: FaultTarget::Proc(ProcAddr {
                    node: NodeAddr::new(0, 1),
                    proc: 0,
                }),
                recover_at: Some(SimTime::new(70.0)),
            },
        ]);
        let r = grouper_run(
            FaultSpec {
                enabled: true,
                ..FaultSpec::default()
            },
            Some(plan),
        );
        assert_eq!(r.outcome, "Drained");
        outcome_partition(&r);
        assert_eq!(r.faults_injected, 2);
        assert!(r.preemptions > 0, "busy node outage must preempt something");
        assert!(r.retries > 0, "preempted tasks must be re-dispatched");
        assert!(r.split_starts > 0, "load should still trigger splits");
        assert!(
            r.records
                .iter()
                .any(|x| x.attempts > 0 && x.outcome != TaskOutcome::Failed),
            "some preempted task should still run to completion"
        );
    }

    #[test]
    fn permanent_loss_of_every_processor_fails_remaining_tasks() {
        // Both nodes of the only site die for good mid-run: every task not
        // yet finished must end as Failed, and the run must still drain.
        let rng = RngStream::root(7);
        let platform = Platform::generate(PlatformSpec::small(1, 2, 2), &rng.derive("p"));
        let wl = Workload::generate(
            WorkloadSpec::paper(100, 1, platform.reference_speed()),
            &rng.derive("w"),
        );
        let mut sched = Fcfs {
            pending: Vec::new(),
        };
        let plan = FaultPlan::from_events(vec![
            PlannedFault {
                at: SimTime::new(20.0),
                target: FaultTarget::Node(NodeAddr::new(0, 0)),
                recover_at: None,
            },
            PlannedFault {
                at: SimTime::new(25.0),
                target: FaultTarget::Node(NodeAddr::new(0, 1)),
                recover_at: None,
            },
        ]);
        let engine = ExecEngine::new(ExecConfig {
            faults: FaultSpec {
                enabled: true,
                ..FaultSpec::default()
            },
            ..ExecConfig::default()
        })
        .with_fault_plan(plan);
        let r = engine.run(platform, wl.tasks, &mut sched);
        assert_eq!(r.outcome, "Drained");
        outcome_partition(&r);
        assert!(r.tasks_failed > 0, "a dead site must strand tasks");
        assert!(r
            .records
            .iter()
            .all(|x| x.outcome != TaskOutcome::Failed || !x.met),);
        // Nothing finishes after the second (fatal) failure.
        for rec in &r.records {
            if rec.outcome != TaskOutcome::Failed {
                assert!(rec.finished.as_f64() <= 25.0 + 1e-9);
            }
        }
    }

    #[test]
    fn stochastic_fault_runs_are_deterministic() {
        let spec = FaultSpec {
            enabled: true,
            proc_mtbf: 150.0,
            proc_mttr: 20.0,
            node_mtbf: 500.0,
            node_mttr: 40.0,
            permanent_fraction: 0.05,
            horizon: 400.0,
            ..FaultSpec::default()
        };
        let a = grouper_run(spec, None);
        let b = grouper_run(spec, None);
        assert!(a.faults_injected > 0, "active spec must inject something");
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_energy, b.total_energy);
        assert_eq!(a.records, b.records);
        outcome_partition(&a);
        assert_eq!(a.outcome, "Drained");
    }

    #[test]
    fn retry_budget_bounds_attempts() {
        let spec = FaultSpec {
            enabled: true,
            proc_mtbf: 40.0, // very hostile
            proc_mttr: 10.0,
            max_retries: 2,
            horizon: 600.0,
            ..FaultSpec::default()
        };
        let r = grouper_run(spec, None);
        outcome_partition(&r);
        for rec in &r.records {
            assert!(
                rec.attempts <= spec.max_retries + 1,
                "attempts {} exceed budget",
                rec.attempts
            );
        }
    }
}
