//! The execution engine: drives a [`Scheduler`] against a [`Platform`] with
//! a task stream, implementing the paper's execution semantics:
//!
//! * a task group occupies **one queue slot** and its members start as a
//!   unit once the group reaches the head of the queue and enough
//!   processors are idle (§IV.D.2: "a task group is considered as a single
//!   arrival unit and dedicated to one slot in the queue"),
//! * the **split process** (§IV.D.2): while an earlier group still runs,
//!   idle processors pull EDF-ordered tasks from the next waiting group,
//! * the two reinforcement feedback signals (§IV.C): the Eq. (9) *error*
//!   immediately after assignment, the Eq. (8) *reward* when the whole
//!   group has completed,
//! * energy accounting per Eqs. (5)–(6) throughout.
//!
//! One **learning cycle** = one completed group feedback; Experiment 2's
//! utilisation-versus-learning-cycle curves are derived from the
//! [`CycleSample`] log.

use crate::group::{GroupId, TaskGroup};
use crate::ids::{NodeAddr, ProcAddr};
use crate::queue::QueuedGroup;
use crate::scheduler::{AssignmentFeedback, Command, GroupFeedback, Scheduler};
use crate::topology::{Platform, PlatformSpec};
use crate::view::PlatformView;
use serde::{Deserialize, Serialize};
use simcore::engine::{Engine, EngineHandle, RunOutcome, Simulation};
use simcore::time::{SimDuration, SimTime};
use workload::{Priority, SiteId, Task, TaskId};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Whether the §IV.D.2 split process is active (ablatable).
    pub split_enabled: bool,
    /// Control-tick period; ticks fire while tasks remain outstanding.
    pub tick_interval: f64,
    /// Maximum number of simulation events (runaway guard).
    pub fuse: u64,
    /// Hard wall on simulated time; the run aborts past this.
    pub max_time: f64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            split_enabled: true,
            tick_interval: 5.0,
            fuse: 50_000_000,
            max_time: 1.0e7,
        }
    }
}

/// Full per-task outcome record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task.
    pub task: TaskId,
    /// Arrival site.
    pub site: SiteId,
    /// Node it executed on.
    pub node: NodeAddr,
    /// The group it was merged into.
    pub group: GroupId,
    /// Task priority.
    pub priority: Priority,
    /// Computational size (MI).
    pub size_mi: f64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// When its group was enqueued at the node.
    pub dispatched: SimTime,
    /// When it began executing.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
    /// Its deadline.
    pub deadline: SimTime,
    /// Whether it finished by the deadline.
    pub met: bool,
    /// Whether it entered execution through the split process.
    pub split: bool,
}

impl TaskRecord {
    /// Response time per Eq. (4)'s summand: waiting plus execution — i.e.
    /// arrival to completion.
    pub fn response_time(&self) -> f64 {
        self.finished.since(self.arrival).as_f64()
    }

    /// Queueing delay (arrival to execution start).
    pub fn wait_time(&self) -> f64 {
        self.started.since(self.arrival).as_f64()
    }

    /// Execution time.
    pub fn exec_time(&self) -> f64 {
        self.finished.since(self.started).as_f64()
    }
}

/// One learning-cycle sample: cumulative useful work delivered at the
/// instant a group feedback was processed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleSample {
    /// Learning-cycle index (1-based).
    pub cycle: u64,
    /// Simulation time of the sample.
    pub time: f64,
    /// Cumulative computational work completed across all processors (MI).
    /// Work — not raw busy time — so that throttled execution (slower,
    /// same instructions) and sleeping both register as reduced service.
    pub work_mi: f64,
}

/// Everything a run produced; the metric layer derives the paper's figures
/// from this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The scheduler's name.
    pub scheduler: String,
    /// Per-task outcomes, in completion order.
    pub records: Vec<TaskRecord>,
    /// Tasks submitted but never completed (0 on a healthy run).
    pub incomplete: usize,
    /// Tasks submitted.
    pub num_tasks: usize,
    /// Instant the last task completed.
    pub makespan: f64,
    /// System energy `ECS` (Eq. 6 summed over nodes) at the makespan.
    pub total_energy: f64,
    /// Mean processor utilisation at the makespan.
    pub mean_utilisation: f64,
    /// Learning-cycle log for utilisation-vs-cycles curves.
    pub cycles: Vec<CycleSample>,
    /// Groups dispatched.
    pub groups_dispatched: u64,
    /// Groups completed (= learning cycles).
    pub groups_completed: u64,
    /// Task starts that went through the split process.
    pub split_starts: u64,
    /// Dispatch commands bounced back to the scheduler.
    pub rejections: u64,
    /// Processor population of the platform.
    pub total_procs: usize,
    /// Sum of nominal processor speeds (MIPS) — the denominator of the
    /// work-based utilisation metric.
    pub total_mips: f64,
    /// Instant of the last task arrival — the end of the paper's
    /// "observation period" (completions after it are queue drain).
    pub arrival_horizon: f64,
    /// The platform spec the run used.
    pub platform_spec: PlatformSpec,
    /// How the event loop ended.
    pub outcome: String,
}

impl RunResult {
    /// Eq. (4) average response time over completed tasks.
    pub fn avg_response_time(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.response_time()).sum::<f64>() / self.records.len() as f64
    }

    /// Successful rate (§V Exp. 3): deadline-met fraction over submitted
    /// tasks (`rew_val / N`).
    pub fn success_rate(&self) -> f64 {
        if self.num_tasks == 0 {
            return 0.0;
        }
        self.records.iter().filter(|r| r.met).count() as f64 / self.num_tasks as f64
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival(u32),
    TaskDone(ProcAddr),
    WakeDone(ProcAddr),
    Tick,
}

#[derive(Debug, Clone, Copy, Default)]
struct Partial {
    node: Option<NodeAddr>,
    group: Option<GroupId>,
    dispatched: Option<SimTime>,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    met: bool,
    split: bool,
}

struct Driver<'s, S: Scheduler> {
    platform: Platform,
    tasks: Vec<Task>,
    sched: &'s mut S,
    cfg: ExecConfig,
    partials: Vec<Partial>,
    completed: usize,
    finished_work: f64,
    cycles: Vec<CycleSample>,
    cycle: u64,
    next_group: u64,
    groups_dispatched: u64,
    groups_completed: u64,
    split_starts: u64,
    rejections: u64,
    last_completion: SimTime,
}

impl<S: Scheduler> Driver<'_, S> {
    /// Starts every task that can start on `addr` right now, per the
    /// batch-start and split rules. Returns events to schedule.
    fn start_ready(&mut self, addr: NodeAddr, now: SimTime) -> Vec<(SimTime, Ev)> {
        let power = self.platform.spec.power;
        let split_enabled = self.cfg.split_enabled;
        let mut out = Vec::new();
        loop {
            let node = self.platform.node_mut(addr);
            let throttle = node.throttle;
            // First group with unstarted members. Completed groups are
            // removed eagerly, so every group before it is still running.
            let mut target = None;
            for (i, g) in node.queue.iter().enumerate() {
                if g.unstarted() > 0 {
                    target = Some(i);
                    break;
                }
            }
            let Some(gi) = target else { break };
            let (g_len, g_unstarted, g_started) = {
                let g = node.queue.get(gi).expect("index in range");
                (g.group.len(), g.unstarted(), g.has_started())
            };
            let mut idle = node.idle_procs();
            // Fastest idle processors serve the earliest deadlines.
            idle.sort_by(|&a, &b| {
                node.processors[b]
                    .speed_mips
                    .partial_cmp(&node.processors[a].speed_mips)
                    .expect("speeds are finite")
            });
            let (to_start, as_split) = if gi == 0 {
                if g_started {
                    // Unit semantics already broken by an earlier split;
                    // keep it running greedily.
                    (idle.len().min(g_unstarted), false)
                } else if idle.len() >= g_len {
                    (g_len, false)
                } else {
                    // Blocked at the head with nothing running ahead of it:
                    // wake sleepers to cover the deficit, then wait.
                    let waking = node
                        .processors
                        .iter()
                        .filter(|p| matches!(p.state(), crate::processor::ProcState::Waking { .. }))
                        .count();
                    let deficit = g_len.saturating_sub(idle.len() + waking);
                    if deficit > 0 {
                        let mut woken = 0;
                        for i in 0..node.processors.len() {
                            if woken == deficit {
                                break;
                            }
                            if let Some(until) = node.processors[i].begin_wake(now, &power) {
                                out.push((
                                    until,
                                    Ev::WakeDone(ProcAddr {
                                        node: addr,
                                        proc: i as u32,
                                    }),
                                ));
                                woken += 1;
                            }
                        }
                    }
                    (0, false)
                }
            } else if split_enabled {
                // §IV.D.2: idle processors take EDF tasks from the next
                // waiting group while the earlier group still runs.
                (idle.len().min(g_unstarted), true)
            } else {
                (0, false)
            };
            if to_start == 0 {
                break;
            }
            for &proc_idx in idle.iter().take(to_start) {
                let (task, group_id) = {
                    let g = node.queue.get_mut(gi).expect("index in range");
                    let task = g.group.tasks[g.next_start];
                    g.next_start += 1;
                    g.running += 1;
                    if g.first_start.is_none() {
                        g.first_start = Some(now);
                    }
                    if as_split {
                        g.split_mode = true;
                    }
                    (task, g.group.id)
                };
                let finish = node.processors[proc_idx].start_task(
                    now,
                    task.id,
                    group_id,
                    task.size_mi,
                    throttle,
                    &power,
                );
                out.push((
                    finish,
                    Ev::TaskDone(ProcAddr {
                        node: addr,
                        proc: proc_idx as u32,
                    }),
                ));
                let p = &mut self.partials[task.id.0 as usize];
                p.started = Some(now);
                p.split = as_split;
                if as_split {
                    self.split_starts += 1;
                }
            }
        }
        out
    }

    /// Applies scheduler commands; returns events to schedule.
    fn apply(&mut self, cmds: Vec<Command>, now: SimTime) -> Vec<(SimTime, Ev)> {
        let power = self.platform.spec.power;
        let mut out = Vec::new();
        let mut touched: Vec<NodeAddr> = Vec::new();
        for cmd in cmds {
            match cmd {
                Command::Dispatch {
                    node: addr,
                    tasks,
                    policy,
                } => {
                    let accept = {
                        let node = self.platform.node(addr);
                        !tasks.is_empty()
                            && tasks.len() <= node.num_processors()
                            && node.queue.available() > 0
                    };
                    if !accept {
                        self.rejections += 1;
                        let site = tasks.first().map(|t| t.site).unwrap_or(addr.site);
                        self.sched.on_rejected(now, site, tasks);
                        continue;
                    }
                    let gid = GroupId(self.next_group);
                    self.next_group += 1;
                    let capacity = self.platform.node(addr).processing_capacity();
                    let group = TaskGroup::new(gid, tasks, policy);
                    let pw = group.processing_weight();
                    // Eq. (9): err = |1 − 1 / proc_fitness|, proc_fitness = pw / PC_c.
                    let error = (1.0 - capacity / pw).abs();
                    for t in &group.tasks {
                        let p = &mut self.partials[t.id.0 as usize];
                        p.node = Some(addr);
                        p.group = Some(gid);
                        p.dispatched = Some(now);
                    }
                    let size = group.len();
                    let mut qg = QueuedGroup::new(group, now);
                    qg.assign_error = error;
                    self.platform
                        .node_mut(addr)
                        .queue
                        .push(qg)
                        .expect("availability checked above");
                    self.groups_dispatched += 1;
                    let fb = AssignmentFeedback {
                        group: gid,
                        node: addr,
                        policy,
                        size,
                        pw,
                        capacity,
                        error,
                    };
                    self.sched.on_assignment(now, &fb);
                    if !touched.contains(&addr) {
                        touched.push(addr);
                    }
                }
                Command::SetThrottle { node, level } => {
                    self.platform.node_mut(node).set_throttle(level);
                }
                Command::Sleep(p) => {
                    self.platform.node_mut(p.node).processors[p.proc as usize].sleep(now);
                }
                Command::Wake(p) => {
                    if let Some(until) = self.platform.node_mut(p.node).processors[p.proc as usize]
                        .begin_wake(now, &power)
                    {
                        out.push((until, Ev::WakeDone(p)));
                    }
                }
            }
        }
        for addr in touched {
            out.extend(self.start_ready(addr, now));
        }
        out
    }

    /// One dispatch round: ask the scheduler for commands and apply them.
    fn dispatch_round(&mut self, now: SimTime) -> Vec<(SimTime, Ev)> {
        let cmds = {
            let view = PlatformView::new(&self.platform, now);
            self.sched.dispatch(now, &view)
        };
        if cmds.is_empty() {
            Vec::new()
        } else {
            self.apply(cmds, now)
        }
    }

    fn handle_task_done(&mut self, proc: ProcAddr, now: SimTime) -> Vec<(SimTime, Ev)> {
        let addr = proc.node;
        let (task_id, group_id) =
            self.platform.node_mut(addr).processors[proc.proc as usize].finish_task(now);
        let task = self.tasks[task_id.0 as usize];
        let met = now <= task.deadline;
        {
            let p = &mut self.partials[task_id.0 as usize];
            let started = p.started.expect("finished task must have started");
            debug_assert!(now > started, "execution takes positive time");
            self.finished_work += task.size_mi;
            p.finished = Some(now);
            p.met = met;
        }
        self.completed += 1;
        self.last_completion = now;

        let node = self.platform.node_mut(addr);
        let complete = {
            let g = node
                .queue
                .find_mut(group_id)
                .expect("running group is queued");
            g.running -= 1;
            g.done += 1;
            if met {
                g.met += 1;
            }
            g.is_complete()
        };
        let mut out = Vec::new();
        if complete {
            let qg = node.queue.remove(group_id).expect("group present");
            self.groups_completed += 1;
            self.cycle += 1;
            self.cycles.push(CycleSample {
                cycle: self.cycle,
                time: now.as_f64(),
                work_mi: self.finished_work,
            });
            let fb = GroupFeedback {
                group: group_id,
                node: addr,
                policy: qg.group.policy,
                size: qg.group.len(),
                reward: qg.met,
                pw: qg.pw,
                error: qg.assign_error,
                enqueued_at: qg.enqueued_at,
                first_start: qg.first_start,
                completed_at: now,
                split: qg.split_mode,
            };
            self.sched.on_group_complete(now, &fb);
        }
        out.extend(self.start_ready(addr, now));
        out.extend(self.dispatch_round(now));
        out
    }
}

impl<S: Scheduler> Simulation for Driver<'_, S> {
    type Event = Ev;

    fn on_event(&mut self, now: SimTime, event: Ev, handle: &mut EngineHandle<'_, Ev>) -> bool {
        if now.as_f64() > self.cfg.max_time {
            return false;
        }
        let scheduled = match event {
            Ev::Arrival(idx) => {
                let task = self.tasks[idx as usize];
                self.sched.on_arrivals(now, task.site, vec![task]);
                self.dispatch_round(now)
            }
            Ev::TaskDone(proc) => self.handle_task_done(proc, now),
            Ev::WakeDone(proc) => {
                self.platform.node_mut(proc.node).processors[proc.proc as usize].finish_wake(now);
                self.start_ready(proc.node, now)
            }
            Ev::Tick => {
                let mut evs = {
                    let cmds = {
                        let view = PlatformView::new(&self.platform, now);
                        self.sched.on_tick(now, &view)
                    };
                    if cmds.is_empty() {
                        Vec::new()
                    } else {
                        self.apply(cmds, now)
                    }
                };
                evs.extend(self.dispatch_round(now));
                if self.completed < self.tasks.len() {
                    handle.schedule_in(SimDuration::new(self.cfg.tick_interval), Ev::Tick);
                }
                evs
            }
        };
        for (t, ev) in scheduled {
            handle.schedule_at(t, ev);
        }
        true
    }
}

/// Runs one scheduler over one platform and task stream.
///
/// ```
/// use platform::{ExecConfig, ExecEngine, Platform, PlatformSpec};
/// use platform::{Command, GroupPolicy, PlatformView, Scheduler};
/// use simcore::rng::RngStream;
/// use simcore::SimTime;
/// use workload::{SiteId, Task, Workload, WorkloadSpec};
///
/// // A two-line FCFS policy…
/// struct Fcfs(Vec<Task>);
/// impl Scheduler for Fcfs {
///     fn name(&self) -> &str { "fcfs" }
///     fn on_arrivals(&mut self, _: SimTime, _: SiteId, tasks: Vec<Task>) {
///         self.0.extend(tasks);
///     }
///     fn dispatch(&mut self, _: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
///         let mut cmds = Vec::new();
///         let mut kept = Vec::new();
///         for t in self.0.drain(..) {
///             match view.site_nodes(t.site).find(|n| n.queue_available() > 0) {
///                 Some(n) => cmds.push(Command::Dispatch {
///                     node: n.addr(), tasks: vec![t], policy: GroupPolicy::Mixed,
///                 }),
///                 None => kept.push(t),
///             }
///         }
///         self.0 = kept;
///         cmds
///     }
/// }
///
/// // …run against a generated platform and workload.
/// let rng = RngStream::root(1);
/// let platform = Platform::generate(PlatformSpec::small(1, 2, 4), &rng.derive("p"));
/// let wl = Workload::generate(WorkloadSpec::paper(50, 1, platform.reference_speed()),
///                             &rng.derive("w"));
/// let mut sched = Fcfs(Vec::new());
/// let result = ExecEngine::new(ExecConfig::default()).run(platform, wl.tasks, &mut sched);
/// assert_eq!(result.incomplete, 0);
/// assert!(result.total_energy > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecEngine {
    /// Engine configuration.
    pub cfg: ExecConfig,
}

impl ExecEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: ExecConfig) -> Self {
        ExecEngine { cfg }
    }

    /// Runs the simulation to completion and collects the results.
    ///
    /// # Panics
    /// Panics if task ids are not dense from 0 (as the workload generator
    /// produces them).
    pub fn run<S: Scheduler>(
        &self,
        platform: Platform,
        tasks: Vec<Task>,
        sched: &mut S,
    ) -> RunResult {
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id.0, i as u64, "task ids must be dense from 0");
        }
        let total_procs = platform.num_processors();
        let total_mips: f64 = platform
            .sites
            .iter()
            .flat_map(|s| &s.nodes)
            .map(|n| n.raw_speed())
            .sum();
        let spec = platform.spec.clone();
        let num_tasks = tasks.len();
        let arrival_horizon = tasks
            .iter()
            .map(|t| t.arrival.as_f64())
            .fold(0.0_f64, f64::max);
        let name = sched.name().to_string();
        let mut driver = Driver {
            platform,
            partials: vec![Partial::default(); num_tasks],
            tasks,
            sched,
            cfg: self.cfg,
            completed: 0,
            finished_work: 0.0,
            cycles: Vec::new(),
            cycle: 0,
            next_group: 0,
            groups_dispatched: 0,
            groups_completed: 0,
            split_starts: 0,
            rejections: 0,
            last_completion: SimTime::ZERO,
        };
        let mut engine = Engine::new().with_fuse(self.cfg.fuse);
        for (i, t) in driver.tasks.iter().enumerate() {
            engine.prime(t.arrival, Ev::Arrival(i as u32));
        }
        engine.prime(SimTime::new(self.cfg.tick_interval), Ev::Tick);
        let outcome = engine.run(&mut driver);

        let makespan = driver.last_completion;
        let records: Vec<TaskRecord> = driver
            .partials
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let finished = p.finished?;
                let task = driver.tasks[i];
                Some(TaskRecord {
                    task: task.id,
                    site: task.site,
                    node: p.node.expect("finished implies dispatched"),
                    group: p.group.expect("finished implies grouped"),
                    priority: task.priority,
                    size_mi: task.size_mi,
                    arrival: task.arrival,
                    dispatched: p.dispatched.expect("finished implies dispatched"),
                    started: p.started.expect("finished implies started"),
                    finished,
                    deadline: task.deadline,
                    met: p.met,
                    split: p.split,
                })
            })
            .collect();
        let incomplete = num_tasks - records.len();
        RunResult {
            scheduler: name,
            incomplete,
            num_tasks,
            makespan: makespan.as_f64(),
            total_energy: driver.platform.total_energy_at(makespan),
            mean_utilisation: driver.platform.mean_utilisation_at(makespan),
            cycles: driver.cycles,
            groups_dispatched: driver.groups_dispatched,
            groups_completed: driver.groups_completed,
            split_starts: driver.split_starts,
            rejections: driver.rejections,
            total_procs,
            total_mips,
            arrival_horizon,
            platform_spec: spec,
            records,
            outcome: format!("{outcome:?}"),
        }
    }
}

/// Formats a [`RunOutcome`] (re-exported for harness assertions).
pub fn outcome_name(o: RunOutcome) -> &'static str {
    match o {
        RunOutcome::Drained => "Drained",
        RunOutcome::Stopped => "Stopped",
        RunOutcome::FuseBlown => "FuseBlown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupPolicy;
    use crate::topology::PlatformSpec;
    use simcore::rng::RngStream;
    use workload::{Workload, WorkloadSpec};

    /// Minimal FCFS scheduler: dispatches each task alone to the node with
    /// the most free queue slots in its site.
    struct Fcfs {
        pending: Vec<Task>,
    }

    impl Scheduler for Fcfs {
        fn name(&self) -> &str {
            "fcfs-test"
        }
        fn on_arrivals(&mut self, _now: SimTime, _site: SiteId, tasks: Vec<Task>) {
            self.pending.extend(tasks);
        }
        fn dispatch(&mut self, _now: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
            let mut cmds = Vec::new();
            let mut remaining = Vec::new();
            for task in self.pending.drain(..) {
                let best = view
                    .site_nodes(task.site)
                    .filter(|n| n.queue_available() > 0)
                    .max_by(|a, b| a.queue_available().cmp(&b.queue_available()));
                match best {
                    Some(n) => cmds.push(Command::Dispatch {
                        node: n.addr(),
                        tasks: vec![task],
                        policy: GroupPolicy::Mixed,
                    }),
                    None => remaining.push(task),
                }
            }
            self.pending = remaining;
            cmds
        }
    }

    fn run_fcfs(n_tasks: usize, split: bool) -> RunResult {
        let rng = RngStream::root(11);
        let platform = Platform::generate(PlatformSpec::small(2, 3, 4), &rng.derive("p"));
        let wl = Workload::generate(
            WorkloadSpec::paper(n_tasks, 2, platform.reference_speed()),
            &rng.derive("w"),
        );
        let mut sched = Fcfs {
            pending: Vec::new(),
        };
        let engine = ExecEngine::new(ExecConfig {
            split_enabled: split,
            ..ExecConfig::default()
        });
        engine.run(platform, wl.tasks, &mut sched)
    }

    #[test]
    fn all_tasks_complete() {
        let r = run_fcfs(200, true);
        assert_eq!(r.incomplete, 0);
        assert_eq!(r.records.len(), 200);
        assert_eq!(r.groups_completed, r.groups_dispatched);
        assert!(r.makespan > 0.0);
        assert_eq!(r.outcome, "Drained");
    }

    #[test]
    fn records_are_causally_ordered() {
        let r = run_fcfs(150, true);
        for rec in &r.records {
            assert!(rec.dispatched >= rec.arrival, "dispatch before arrival");
            assert!(rec.started >= rec.dispatched, "start before dispatch");
            assert!(rec.finished > rec.started, "finish before start");
            assert!(rec.response_time() > 0.0);
            assert_eq!(rec.met, rec.finished <= rec.deadline);
        }
    }

    #[test]
    fn energy_is_positive_and_bounded() {
        let r = run_fcfs(100, true);
        // Lower bound: every proc idling the whole run.
        // Upper bound: every proc at global peak (95 W) the whole run.
        // Node energy is the per-proc mean, so ECS sums node counts.
        let nodes = 6.0;
        let lo = 48.0 * r.makespan * nodes * 0.99;
        let hi = 95.0 * r.makespan * nodes * 1.01;
        assert!(
            r.total_energy > lo && r.total_energy < hi,
            "energy {} not in [{lo}, {hi}]",
            r.total_energy
        );
    }

    #[test]
    fn utilisation_in_unit_range() {
        let r = run_fcfs(100, true);
        assert!(r.mean_utilisation > 0.0 && r.mean_utilisation <= 1.0);
    }

    #[test]
    fn cycles_are_monotone() {
        let r = run_fcfs(120, true);
        assert_eq!(r.cycles.len() as u64, r.groups_completed);
        for w in r.cycles.windows(2) {
            assert!(w[1].cycle == w[0].cycle + 1);
            assert!(w[1].time >= w[0].time);
            assert!(w[1].work_mi >= w[0].work_mi);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_fcfs(100, true);
        let b = run_fcfs(100, true);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_energy, b.total_energy);
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn single_task_groups_make_split_irrelevant() {
        // With one task per group, the split path never triggers.
        let r = run_fcfs(100, true);
        assert_eq!(r.split_starts, 0);
    }

    /// Scheduler that merges all pending site tasks into one group of up to
    /// 4 to exercise batch starts and splits.
    struct Grouper {
        pending: Vec<Task>,
    }

    impl Scheduler for Grouper {
        fn name(&self) -> &str {
            "grouper-test"
        }
        fn on_arrivals(&mut self, _now: SimTime, _site: SiteId, tasks: Vec<Task>) {
            self.pending.extend(tasks);
        }
        fn dispatch(&mut self, _now: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
            let mut cmds = Vec::new();
            let mut used_slots: Vec<(NodeAddr, usize)> = Vec::new();
            while !self.pending.is_empty() {
                let site = self.pending[0].site;
                let mut group = Vec::new();
                let mut rest = Vec::new();
                for t in self.pending.drain(..) {
                    if t.site == site && group.len() < 4 {
                        group.push(t);
                    } else {
                        rest.push(t);
                    }
                }
                self.pending = rest;
                let slots_used = |addr: NodeAddr, used: &[(NodeAddr, usize)]| {
                    used.iter()
                        .find(|(a, _)| *a == addr)
                        .map(|(_, c)| *c)
                        .unwrap_or(0)
                };
                let best = view
                    .site_nodes(site)
                    .filter(|n| {
                        n.queue_available() > slots_used(n.addr(), &used_slots)
                            && n.num_processors() >= group.len()
                    })
                    .max_by(|a, b| {
                        a.processing_capacity()
                            .partial_cmp(&b.processing_capacity())
                            .unwrap()
                    });
                match best {
                    Some(n) => {
                        let addr = n.addr();
                        match used_slots.iter_mut().find(|(a, _)| *a == addr) {
                            Some((_, c)) => *c += 1,
                            None => used_slots.push((addr, 1)),
                        }
                        cmds.push(Command::Dispatch {
                            node: addr,
                            tasks: group,
                            policy: GroupPolicy::Mixed,
                        });
                    }
                    None => {
                        // No room anywhere: keep the tasks pending.
                        self.pending.extend(group);
                        break;
                    }
                }
            }
            cmds
        }
    }

    #[test]
    fn grouped_execution_completes_and_splits() {
        let rng = RngStream::root(21);
        let platform = Platform::generate(PlatformSpec::small(1, 2, 4), &rng.derive("p"));
        let mut spec = WorkloadSpec::paper(300, 1, platform.reference_speed());
        spec.mean_interarrival = 0.4; // oversubscribe to force queueing and grouping
        let wl = Workload::generate(spec, &rng.derive("w"));
        let mut sched = Grouper {
            pending: Vec::new(),
        };
        let engine = ExecEngine::new(ExecConfig::default());
        let r = engine.run(platform, wl.tasks, &mut sched);
        assert_eq!(r.incomplete, 0, "outcome {}", r.outcome);
        assert!(
            r.split_starts > 0,
            "heavy grouped load should trigger splits"
        );
        assert!(
            r.groups_dispatched < 300,
            "tasks should actually be grouped"
        );
    }

    #[test]
    fn split_disabled_never_splits() {
        let rng = RngStream::root(21);
        let platform = Platform::generate(PlatformSpec::small(1, 2, 4), &rng.derive("p"));
        let mut spec = WorkloadSpec::paper(300, 1, platform.reference_speed());
        spec.mean_interarrival = 1.0;
        let wl = Workload::generate(spec, &rng.derive("w"));
        let mut sched = Grouper {
            pending: Vec::new(),
        };
        let engine = ExecEngine::new(ExecConfig {
            split_enabled: false,
            ..ExecConfig::default()
        });
        let r = engine.run(platform, wl.tasks, &mut sched);
        assert_eq!(r.incomplete, 0);
        assert_eq!(r.split_starts, 0);
        for rec in &r.records {
            assert!(!rec.split);
        }
    }

    #[test]
    fn split_improves_throughput_under_load() {
        let mk = |split: bool| {
            let rng = RngStream::root(33);
            let platform = Platform::generate(PlatformSpec::small(1, 2, 5), &rng.derive("p"));
            let mut spec = WorkloadSpec::paper(400, 1, platform.reference_speed());
            spec.mean_interarrival = 0.8;
            let wl = Workload::generate(spec, &rng.derive("w"));
            let mut sched = Grouper {
                pending: Vec::new(),
            };
            ExecEngine::new(ExecConfig {
                split_enabled: split,
                ..ExecConfig::default()
            })
            .run(platform, wl.tasks, &mut sched)
        };
        let with = mk(true);
        let without = mk(false);
        assert!(
            with.avg_response_time() <= without.avg_response_time(),
            "split should not hurt response time: {} vs {}",
            with.avg_response_time(),
            without.avg_response_time()
        );
    }
}
