//! Deterministic checkpoint/restore of a running simulation.
//!
//! A checkpoint captures the *complete* state of an in-flight run at a
//! quiescent event boundary — engine clock, pending event list and sequence
//! counter, every processor's power/sleep/fault phase and accounting, node
//! queues with partially executed groups, the driver's fault timeline and
//! counters, and the scheduler's learning state (via
//! [`Scheduler::save_state`]) — such that a run restored from the snapshot
//! and driven to completion is **bit-identical** to one that never stopped
//! ([`crate::oracle::replay_divergence`] reports `None`).
//!
//! Snapshots use the [`snapshot`] container (versioned, CRC-checked,
//! torn-write-safe via temp-file + fsync + atomic rename). The payload
//! opens with an opaque caller `meta` blob (the experiments layer stores
//! the scheduler kind and seeded configuration there so `arls resume` can
//! reconstruct the right policy object), followed by the engine state.
//! Every decode path is bounds- and invariant-checked and returns a typed
//! [`SnapshotError`]; corrupt input must never panic.
//!
//! Cached aggregates (node power sums, site stats, queue loads, the flat
//! processor layout) are deliberately **not** serialized: the decoder
//! rebuilds them from restored ground truth via [`ComputeNode::new`],
//! `Platform::from_parts` and `proc_layout`, so a snapshot cannot smuggle
//! in an inconsistent cache.

use crate::engine::{
    assemble_result, proc_layout, CycleSample, Driver, Ev, ExecConfig, ExecEngine, Partial,
    RunResult,
};
use crate::fault::{FaultSpec, FaultTarget, PlannedFault};
use crate::group::{GroupId, GroupPolicy, TaskGroup};
use crate::ids::{NodeAddr, ProcAddr};
use crate::node::ComputeNode;
use crate::power::PowerParams;
use crate::processor::{ProcState, Processor};
use crate::queue::QueuedGroup;
use crate::scheduler::Scheduler;
use crate::topology::{Platform, PlatformSpec, Site};
use simcore::engine::Engine;
use simcore::event::{EventQueue, ScheduledEvent};
use simcore::time::SimTime;
use snapshot::{corrupt, SnapReader, SnapWriter, SnapshotError};
use std::path::PathBuf;
use workload::{Priority, SiteId, Task, TaskId};

/// Periodic-checkpoint configuration for
/// [`ExecEngine::run_with_checkpoints`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Write a snapshot every `every` processed events (values below 1 are
    /// treated as 1).
    pub every: u64,
    /// Directory snapshots land in (created if missing).
    pub dir: PathBuf,
    /// File-name prefix: snapshots are named
    /// `{prefix}-{processed:012}.snap`.
    pub prefix: String,
    /// Opaque caller blob stored at the head of every snapshot payload.
    /// The engine never interprets it; the experiments layer uses it to
    /// record which scheduler (and configuration) the run was using so a
    /// later `resume` can rebuild the same policy object.
    pub meta: Vec<u8>,
    /// Crash injection for the recovery harness: `Some(n)` calls
    /// [`std::process::abort`] immediately after the `n`-th successful
    /// checkpoint write (1-based), simulating a hard kill at an arbitrary
    /// point of the run. `None` (the default) never crashes.
    pub crash_after: Option<u64>,
}

impl CheckpointConfig {
    /// Creates a config with the default `"ckpt"` prefix and empty meta.
    pub fn new(every: u64, dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            every,
            dir: dir.into(),
            prefix: "ckpt".to_string(),
            meta: Vec::new(),
            crash_after: None,
        }
    }

    /// Replaces the snapshot file-name prefix.
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = prefix.into();
        self
    }

    /// Attaches the opaque caller meta blob.
    pub fn with_meta(mut self, meta: Vec<u8>) -> Self {
        self.meta = meta;
        self
    }

    /// Arms crash injection after the `n`-th checkpoint write (1-based).
    pub fn with_crash_after(mut self, n: u64) -> Self {
        self.crash_after = Some(n);
        self
    }
}

/// Outcome of a checkpointed run.
///
/// A failing checkpoint write (disk full, permissions, …) never aborts the
/// simulation: the error is recorded here, further checkpoint writes are
/// skipped, and the run finishes normally with its in-memory result intact.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The run's result — bit-identical to an uncheckpointed run.
    pub result: RunResult,
    /// Snapshots successfully written.
    pub checkpoints_written: u64,
    /// The first checkpoint-write failure, if any occurred.
    pub write_error: Option<SnapshotError>,
}

impl ExecEngine {
    /// [`ExecEngine::run`] with periodic checkpointing.
    ///
    /// After every `ck.every`-th processed event the full simulation state
    /// is serialized and written atomically to
    /// `{ck.dir}/{ck.prefix}-{processed:012}.snap`. Checkpointing is
    /// strictly observing: the run's event sequence and result are
    /// bit-identical to [`ExecEngine::run`] on the same inputs.
    pub fn run_with_checkpoints<S: Scheduler>(
        &self,
        platform: Platform,
        tasks: Vec<Task>,
        sched: &mut S,
        ck: &CheckpointConfig,
    ) -> CheckpointedRun {
        let (mut driver, mut engine) = self.prepare(platform, tasks, sched, &telemetry::NULL);
        let mut written = 0u64;
        let mut write_error: Option<SnapshotError> = None;
        if let Err(e) = std::fs::create_dir_all(&ck.dir) {
            write_error = Some(SnapshotError::Io(e));
        }
        let every = ck.every.max(1);
        let fuse = engine.fuse();
        let prof = self.profiler();
        let outcome = engine.run_hooked(&mut driver, |now, processed, queue, drv| {
            if write_error.is_some() || processed % every != 0 {
                return;
            }
            // Profile serialize + atomic write as one checkpoint sample;
            // the clock is only read when a profiler is attached.
            let ck_start = prof.map(|_| std::time::Instant::now());
            let payload = encode_checkpoint(drv, now, processed, fuse, queue, &ck.meta);
            let path = ck.dir.join(format!("{}-{processed:012}.snap", ck.prefix));
            let wrote = snapshot::write_atomic(&path, &payload);
            if let (Some(p), Some(start)) = (prof, ck_start) {
                p.record_duration(telemetry::Phase::CheckpointWrite, start.elapsed());
            }
            match wrote {
                Ok(()) => {
                    written += 1;
                    if ck.crash_after == Some(written) {
                        // Crash-recovery harness: die hard, mid-run, with
                        // no unwinding — exactly like a kill -9.
                        std::process::abort();
                    }
                }
                Err(e) => write_error = Some(e),
            }
        });
        let events_processed = engine.processed();
        let max_queue_occupancy = engine.queue().max_occupancy();
        let result = assemble_result(driver, outcome, events_processed, max_queue_occupancy);
        CheckpointedRun {
            result,
            checkpoints_written: written,
            write_error,
        }
    }
}

/// Extracts the opaque caller meta blob from a snapshot payload (as
/// returned by [`snapshot::read_file`]).
pub fn snapshot_meta(payload: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    let mut r = SnapReader::new(payload);
    Ok(r.bytes()?.to_vec())
}

/// Resumes a run from a snapshot payload, driving it to completion.
///
/// `sched` must be a freshly-constructed scheduler of the same kind and
/// configuration the snapshot was taken with (its name is checked); its
/// learning state is restored via [`Scheduler::load_state`]. The returned
/// [`RunResult`] is bit-identical — under
/// [`crate::oracle::replay_divergence`] — to the uninterrupted run.
///
/// # Errors
/// Any structural problem in the payload (truncation, invalid values,
/// out-of-range indices, scheduler mismatch) yields a typed
/// [`SnapshotError`]; this function never panics on corrupt input.
pub fn resume_from_payload<S: Scheduler>(
    payload: &[u8],
    sched: &mut S,
) -> Result<RunResult, SnapshotError> {
    let mut r = SnapReader::new(payload);
    let _meta = r.bytes()?;
    resume_from_reader(&mut r, sched)
}

/// [`resume_from_payload`] for a reader already positioned past the meta
/// blob (the experiments layer reads the meta itself to construct `sched`).
pub fn resume_from_reader<S: Scheduler>(
    r: &mut SnapReader<'_>,
    sched: &mut S,
) -> Result<RunResult, SnapshotError> {
    let (mut driver, mut engine) = restore_from_reader(r, sched)?;
    let outcome = engine.run(&mut driver);
    let events_processed = engine.processed();
    let max_queue_occupancy = engine.queue().max_occupancy();
    Ok(assemble_result(
        driver,
        outcome,
        events_processed,
        max_queue_occupancy,
    ))
}

/// Decodes a snapshot into a paused `(Driver, Engine)` pair without
/// running it — the shared restore path behind [`resume_from_reader`]
/// (which drives it to completion) and the serving session (which
/// resumes it in paced [`Engine::run_until`] slices).
pub(crate) fn restore_from_reader<'s, S: Scheduler>(
    r: &mut SnapReader<'_>,
    sched: &'s mut S,
) -> Result<(Driver<'s, S>, Engine<Ev>), SnapshotError> {
    let name = r.str()?;
    if name != sched.name() {
        return Err(corrupt(format!(
            "snapshot was taken with scheduler '{name}', resume requested with '{}'",
            sched.name()
        )));
    }
    let cfg = read_cfg(r)?;
    let platform = read_platform(r)?;

    let num_tasks = r.len_hint()?;
    let mut tasks = Vec::with_capacity(num_tasks);
    for i in 0..num_tasks {
        let t = read_task(r)?;
        if t.id.0 != i as u64 {
            return Err(corrupt(format!(
                "task ids not dense from 0: slot {i} holds id {}",
                t.id.0
            )));
        }
        if (t.site.0 as usize) >= platform.sites.len() {
            return Err(corrupt(format!(
                "task {} site {} out of range",
                t.id.0, t.site.0
            )));
        }
        tasks.push(t);
    }

    let n_partials = r.len_hint()?;
    if n_partials != num_tasks {
        return Err(corrupt(format!(
            "{n_partials} partials for {num_tasks} tasks"
        )));
    }
    let mut partials = Vec::with_capacity(n_partials);
    for _ in 0..n_partials {
        partials.push(read_partial(r, &platform)?);
    }

    let completed = r.usize()?;
    let finished_work = r.f64_time()?;
    let n_cycles = r.len_hint()?;
    let mut cycles = Vec::with_capacity(n_cycles);
    for _ in 0..n_cycles {
        cycles.push(CycleSample {
            cycle: r.u64()?,
            time: r.f64_time()?,
            work_mi: r.f64_time()?,
        });
    }
    let cycle = r.u64()?;
    let next_group = r.u64()?;
    let groups_dispatched = r.u64()?;
    let groups_completed = r.u64()?;
    let split_starts = r.u64()?;
    let rejections = r.u64()?;
    let last_completion = read_time(r)?;

    let n_plan = r.len_hint()?;
    let mut plan = Vec::with_capacity(n_plan);
    for _ in 0..n_plan {
        plan.push(read_planned_fault(r, &platform)?);
    }

    let (proc_base, node_track, flat) = proc_layout(&platform);
    let n_epochs = r.len_hint()?;
    if n_epochs != flat {
        return Err(corrupt(format!(
            "{n_epochs} fault epochs for {flat} processors"
        )));
    }
    let mut epochs = Vec::with_capacity(n_epochs);
    for _ in 0..n_epochs {
        epochs.push(r.u32()?);
    }
    let n_offline = r.len_hint()?;
    if n_offline != flat {
        return Err(corrupt(format!(
            "{n_offline} offline-until entries for {flat} processors"
        )));
    }
    let mut offline_until = Vec::with_capacity(n_offline);
    for _ in 0..n_offline {
        // May legitimately be +INFINITY (permanently dead processor), so
        // only NaN and negatives are rejected.
        let v = r.f64()?;
        if v.is_nan() || v < 0.0 {
            return Err(corrupt(format!("invalid offline-until value {v}")));
        }
        offline_until.push(v);
    }
    let n_perm = r.len_hint()?;
    if n_perm != platform.num_sites() {
        return Err(corrupt(format!(
            "{n_perm} per-site processor counts for {} sites",
            platform.num_sites()
        )));
    }
    let mut site_perm_procs = Vec::with_capacity(n_perm);
    for s in 0..n_perm {
        let v = r.usize()?;
        let site_procs: usize = platform.sites[s]
            .nodes
            .iter()
            .map(|n| n.num_processors())
            .sum();
        if v > site_procs {
            return Err(corrupt(format!(
                "site {s} claims {v} live processors of {site_procs}"
            )));
        }
        site_perm_procs.push(v);
    }
    let failed_tasks = r.usize()?;
    let faults_injected = r.u64()?;
    let faults_recovered = r.u64()?;
    let preemptions = r.u64()?;
    let retries = r.u64()?;
    let groups_aborted = r.u64()?;
    let events_seen = r.u64()?;
    let met_count = r.usize()?;
    let settled_at = read_time(r)?;
    if completed > num_tasks || failed_tasks > num_tasks || met_count > num_tasks {
        return Err(corrupt("task counters exceed the task population"));
    }

    let blob = r.bytes()?;
    {
        let mut sr = SnapReader::new(blob);
        sched.load_state(&mut sr)?;
        if !sr.is_exhausted() {
            return Err(corrupt(format!(
                "scheduler state has {} unconsumed bytes",
                sr.remaining()
            )));
        }
    }

    let now = read_time(r)?;
    let processed = r.u64()?;
    let fuse = r.u64()?;
    let next_seq = r.u64()?;
    let n_entries = r.len_hint()?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let time = read_time(r)?;
        if time < now {
            return Err(corrupt(format!(
                "pending event at t={} predates the restored clock t={}",
                time.as_f64(),
                now.as_f64()
            )));
        }
        let seq = r.u64()?;
        if seq >= next_seq {
            return Err(corrupt(format!(
                "event sequence {seq} not below the counter {next_seq}"
            )));
        }
        let event = read_ev(r, &platform, num_tasks, plan.len())?;
        entries.push(ScheduledEvent { time, seq, event });
    }
    if !r.is_exhausted() {
        return Err(corrupt(format!(
            "{} trailing bytes after engine state",
            r.remaining()
        )));
    }

    let driver = Driver {
        platform,
        tasks,
        sched,
        cfg,
        partials,
        completed,
        finished_work,
        cycles,
        cycle,
        next_group,
        groups_dispatched,
        groups_completed,
        split_starts,
        rejections,
        last_completion,
        plan,
        proc_base,
        epochs,
        offline_until,
        site_perm_procs,
        failed_tasks,
        faults_injected,
        faults_recovered,
        preemptions,
        retries,
        groups_aborted,
        touched_scratch: Vec::new(),
        ev_scratch: Vec::new(),
        // Resumed runs are untraced, unaudited and unmonitored: neither
        // recorder output nor the oracle nor the diagnostics-only
        // monitor/sampler state is part of the replay-divergence
        // contract, and none of it is checkpointable mid-run.
        rec: &telemetry::NULL,
        t_cyc: false,
        t_dec: false,
        progress_on: false,
        wall_start: std::time::Instant::now(),
        events_seen,
        met_count,
        node_track,
        mon: None,
        sampler: None,
        oracle: None,
        settled_at,
    };
    let queue = EventQueue::from_entries(entries, next_seq);
    let engine = Engine::from_parts(queue, now, processed, fuse);
    Ok((driver, engine))
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

/// Serializes the full mid-run state into a snapshot payload. The engine
/// arguments come from the checkpoint hook (the driver cannot see the
/// engine it runs inside).
pub(crate) fn encode_checkpoint<S: Scheduler>(
    driver: &mut Driver<'_, S>,
    now: SimTime,
    processed: u64,
    fuse: u64,
    queue: &EventQueue<Ev>,
    meta: &[u8],
) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.bytes(meta);
    w.str(driver.sched.name());
    write_cfg(&mut w, &driver.cfg);
    write_platform(&mut w, &driver.platform);

    w.usize(driver.tasks.len());
    for t in &driver.tasks {
        write_task(&mut w, t);
    }

    w.usize(driver.partials.len());
    for p in &driver.partials {
        write_partial(&mut w, p);
    }
    w.usize(driver.completed);
    w.f64(driver.finished_work);
    w.usize(driver.cycles.len());
    for c in &driver.cycles {
        w.u64(c.cycle);
        w.f64(c.time);
        w.f64(c.work_mi);
    }
    w.u64(driver.cycle);
    w.u64(driver.next_group);
    w.u64(driver.groups_dispatched);
    w.u64(driver.groups_completed);
    w.u64(driver.split_starts);
    w.u64(driver.rejections);
    w.f64(driver.last_completion.as_f64());
    w.usize(driver.plan.len());
    for f in &driver.plan {
        write_planned_fault(&mut w, f);
    }
    w.usize(driver.epochs.len());
    for &e in &driver.epochs {
        w.u32(e);
    }
    w.usize(driver.offline_until.len());
    for &v in &driver.offline_until {
        w.f64(v);
    }
    w.usize(driver.site_perm_procs.len());
    for &v in &driver.site_perm_procs {
        w.usize(v);
    }
    w.usize(driver.failed_tasks);
    w.u64(driver.faults_injected);
    w.u64(driver.faults_recovered);
    w.u64(driver.preemptions);
    w.u64(driver.retries);
    w.u64(driver.groups_aborted);
    w.u64(driver.events_seen);
    w.usize(driver.met_count);
    w.f64(driver.settled_at.as_f64());

    let mut sw = SnapWriter::new();
    driver.sched.save_state(&mut sw);
    w.bytes(&sw.into_bytes());

    w.f64(now.as_f64());
    w.u64(processed);
    w.u64(fuse);
    w.u64(queue.pushed());
    // Heap iteration order is unspecified; sort by the unique sequence
    // number so identical states produce identical bytes.
    let mut entries: Vec<&ScheduledEvent<Ev>> = queue.entries().collect();
    entries.sort_by_key(|e| e.seq);
    w.usize(entries.len());
    for e in entries {
        w.f64(e.time.as_f64());
        w.u64(e.seq);
        write_ev(&mut w, e.event);
    }
    w.into_bytes()
}

fn write_cfg(w: &mut SnapWriter, cfg: &ExecConfig) {
    w.bool(cfg.split_enabled);
    w.f64(cfg.tick_interval);
    w.u64(cfg.fuse);
    w.f64(cfg.max_time);
    // A resumed run never carries the oracle (its mid-run state is not
    // checkpointable), so the audit flag is pinned off in the snapshot.
    w.bool(false);
    let f = &cfg.faults;
    w.bool(f.enabled);
    w.f64(f.proc_mtbf);
    w.f64(f.proc_mttr);
    w.f64(f.node_mtbf);
    w.f64(f.node_mttr);
    w.f64(f.permanent_fraction);
    w.u32(f.max_retries);
    w.f64(f.horizon);
    w.u64(f.seed);
}

fn write_platform(w: &mut SnapWriter, p: &Platform) {
    let spec = &p.spec;
    w.u32(spec.num_sites);
    w.u32(spec.nodes_per_site.0);
    w.u32(spec.nodes_per_site.1);
    w.u32(spec.procs_per_node.0);
    w.u32(spec.procs_per_node.1);
    w.f64(spec.speed_range.0);
    w.f64(spec.speed_range.1);
    w.opt_f64(spec.heterogeneity_cv);
    w.usize(spec.queue_capacity);
    let pw = &spec.power;
    w.f64(pw.p_idle);
    w.f64(pw.p_peak_min);
    w.f64(pw.p_peak_max);
    w.f64(pw.p_sleep);
    w.f64(pw.wake_latency);
    w.f64(pw.speed_floor);
    w.f64(pw.speed_ceil);

    w.usize(p.sites.len());
    for site in &p.sites {
        w.u32(site.id.0);
        w.usize(site.nodes.len());
        for node in &site.nodes {
            w.u32(node.addr.site.0);
            w.u32(node.addr.node);
            w.f64(node.throttle);
            w.usize(node.processors.len());
            for proc in &node.processors {
                write_processor(w, proc);
            }
            w.usize(node.queue.len());
            for qg in node.queue.iter() {
                write_queued_group(w, qg);
            }
        }
    }
}

fn write_processor(w: &mut SnapWriter, p: &Processor) {
    w.f64(p.speed_mips);
    w.f64(p.p_peak);
    write_proc_state(w, &p.state());
    w.f64(p.last_transition().as_f64());
    w.f64(p.busy_time_raw());
    w.f64(p.idle_time());
    w.f64(p.sleep_time());
    w.f64(p.failed_time());
    w.f64(p.energy_raw());
    w.u64(p.tasks_executed());
    w.f64(p.p_idle());
    w.f64(p.p_sleep());
}

fn write_proc_state(w: &mut SnapWriter, s: &ProcState) {
    match *s {
        ProcState::Idle => w.u8(0),
        ProcState::Busy {
            task,
            group,
            finish,
            power,
        } => {
            w.u8(1);
            w.u64(task.0);
            w.u64(group.0);
            w.f64(finish.as_f64());
            w.f64(power);
        }
        ProcState::Asleep => w.u8(2),
        ProcState::Waking { until } => {
            w.u8(3);
            w.f64(until.as_f64());
        }
        ProcState::Failed => w.u8(4),
    }
}

fn write_queued_group(w: &mut SnapWriter, qg: &QueuedGroup) {
    w.u64(qg.group.id.0);
    write_policy(w, qg.group.policy);
    w.usize(qg.group.tasks.len());
    for t in &qg.group.tasks {
        write_task(w, t);
    }
    w.f64(qg.enqueued_at.as_f64());
    w.f64(qg.pw);
    w.usize(qg.next_start);
    w.u32(qg.running);
    w.u32(qg.done);
    w.u32(qg.lost);
    w.u32(qg.met);
    w.opt_f64(qg.first_start.map(|t| t.as_f64()));
    w.bool(qg.split_mode);
    w.f64(qg.assign_error);
}

fn write_policy(w: &mut SnapWriter, p: GroupPolicy) {
    match p {
        GroupPolicy::Mixed => w.u8(0),
        GroupPolicy::Identical(prio) => {
            w.u8(1);
            w.u8(prio.index() as u8);
        }
    }
}

fn write_task(w: &mut SnapWriter, t: &Task) {
    t.snap_write(w);
}

fn write_partial(w: &mut SnapWriter, p: &Partial) {
    match p.node {
        Some(n) => {
            w.u8(1);
            w.u32(n.site.0);
            w.u32(n.node);
        }
        None => w.u8(0),
    }
    w.opt_u64(p.group.map(|g| g.0));
    w.opt_f64(p.dispatched.map(|t| t.as_f64()));
    w.opt_f64(p.started.map(|t| t.as_f64()));
    w.opt_f64(p.finished.map(|t| t.as_f64()));
    w.opt_f64(p.failed_at.map(|t| t.as_f64()));
    w.bool(p.met);
    w.bool(p.split);
    w.u32(p.attempts);
}

fn write_planned_fault(w: &mut SnapWriter, f: &PlannedFault) {
    w.f64(f.at.as_f64());
    match f.target {
        FaultTarget::Proc(p) => {
            w.u8(0);
            w.u32(p.node.site.0);
            w.u32(p.node.node);
            w.u32(p.proc);
        }
        FaultTarget::Node(n) => {
            w.u8(1);
            w.u32(n.site.0);
            w.u32(n.node);
        }
    }
    w.opt_f64(f.recover_at.map(|t| t.as_f64()));
}

fn write_ev(w: &mut SnapWriter, ev: Ev) {
    match ev {
        Ev::Arrival(i) => {
            w.u8(0);
            w.u32(i);
        }
        Ev::TaskDone(p, epoch) => {
            w.u8(1);
            w.u32(p.node.site.0);
            w.u32(p.node.node);
            w.u32(p.proc);
            w.u32(epoch);
        }
        Ev::WakeDone(p, epoch) => {
            w.u8(2);
            w.u32(p.node.site.0);
            w.u32(p.node.node);
            w.u32(p.proc);
            w.u32(epoch);
        }
        Ev::Tick => w.u8(3),
        Ev::Fault(i) => {
            w.u8(4);
            w.u32(i);
        }
        Ev::Recover(i) => {
            w.u8(5);
            w.u32(i);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

fn read_time(r: &mut SnapReader<'_>) -> Result<SimTime, SnapshotError> {
    Ok(SimTime::new(r.f64_time()?))
}

fn read_opt_time(r: &mut SnapReader<'_>) -> Result<Option<SimTime>, SnapshotError> {
    match r.opt_f64()? {
        None => Ok(None),
        Some(v) => {
            if !v.is_finite() || v < 0.0 {
                return Err(corrupt(format!("invalid optional time {v}")));
            }
            Ok(Some(SimTime::new(v)))
        }
    }
}

fn read_cfg(r: &mut SnapReader<'_>) -> Result<ExecConfig, SnapshotError> {
    let split_enabled = r.bool()?;
    let tick_interval = r.f64_time()?;
    if tick_interval <= 0.0 {
        return Err(corrupt("tick interval must be positive"));
    }
    let fuse = r.u64()?;
    let max_time = r.f64()?;
    if max_time.is_nan() {
        return Err(corrupt("max_time is NaN"));
    }
    let audit = r.bool()?;
    let faults = FaultSpec {
        enabled: r.bool()?,
        proc_mtbf: r.f64_time()?,
        proc_mttr: r.f64_time()?,
        node_mtbf: r.f64_time()?,
        node_mttr: r.f64_time()?,
        permanent_fraction: {
            let v = r.f64_finite()?;
            if !(0.0..=1.0).contains(&v) {
                return Err(corrupt(format!("permanent fraction {v} outside [0, 1]")));
            }
            v
        },
        max_retries: r.u32()?,
        horizon: r.f64_time()?,
        seed: r.u64()?,
    };
    Ok(ExecConfig {
        split_enabled,
        tick_interval,
        fuse,
        max_time,
        faults,
        audit,
    })
}

fn read_platform(r: &mut SnapReader<'_>) -> Result<Platform, SnapshotError> {
    let num_sites = r.u32()?;
    let nodes_per_site = (r.u32()?, r.u32()?);
    let procs_per_node = (r.u32()?, r.u32()?);
    let speed_range = (r.f64_finite()?, r.f64_finite()?);
    let heterogeneity_cv = match r.opt_f64()? {
        None => None,
        Some(v) => {
            if !v.is_finite() || v < 0.0 {
                return Err(corrupt(format!("invalid heterogeneity CV {v}")));
            }
            Some(v)
        }
    };
    let queue_capacity = r.usize()?;
    if queue_capacity == 0 {
        return Err(corrupt("queue capacity must be positive"));
    }
    let power = PowerParams {
        p_idle: r.f64_finite()?,
        p_peak_min: r.f64_finite()?,
        p_peak_max: r.f64_finite()?,
        p_sleep: r.f64_finite()?,
        wake_latency: r.f64_time()?,
        speed_floor: r.f64_finite()?,
        speed_ceil: r.f64_finite()?,
    };
    let spec = PlatformSpec {
        num_sites,
        nodes_per_site,
        procs_per_node,
        speed_range,
        heterogeneity_cv,
        queue_capacity,
        power,
    };

    let n_sites = r.len_hint()?;
    if n_sites == 0 || n_sites != num_sites as usize {
        return Err(corrupt(format!(
            "{n_sites} serialized sites for a spec of {num_sites}"
        )));
    }
    let mut sites = Vec::with_capacity(n_sites);
    for s in 0..n_sites {
        let id = r.u32()?;
        if id as usize != s {
            return Err(corrupt(format!("site {s} carries id {id}")));
        }
        let n_nodes = r.len_hint()?;
        if n_nodes == 0 {
            return Err(corrupt(format!("site {s} has no nodes")));
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for n in 0..n_nodes {
            nodes.push(read_node(r, s as u32, n as u32, queue_capacity)?);
        }
        sites.push(Site {
            id: SiteId(s as u32),
            nodes,
        });
    }
    Ok(Platform::from_parts(spec, sites))
}

fn read_node(
    r: &mut SnapReader<'_>,
    site: u32,
    node_idx: u32,
    queue_capacity: usize,
) -> Result<ComputeNode, SnapshotError> {
    let a_site = r.u32()?;
    let a_node = r.u32()?;
    if a_site != site || a_node != node_idx {
        return Err(corrupt(format!(
            "node S{site}/n{node_idx} carries address S{a_site}/n{a_node}"
        )));
    }
    let throttle = r.f64_finite()?;
    if !(0.1..=1.0).contains(&throttle) {
        return Err(corrupt(format!("throttle {throttle} outside [0.1, 1.0]")));
    }
    let n_procs = r.len_hint()?;
    if n_procs == 0 {
        return Err(corrupt(format!(
            "node S{site}/n{node_idx} has no processors"
        )));
    }
    let mut procs = Vec::with_capacity(n_procs);
    for _ in 0..n_procs {
        procs.push(read_processor(r)?);
    }
    // `ComputeNode::new` recomputes every cached aggregate (power sums,
    // idle/asleep/failed counts) from the restored processor states.
    let mut node = ComputeNode::new(
        NodeAddr {
            site: SiteId(site),
            node: node_idx,
        },
        procs,
        queue_capacity,
    );
    node.throttle = throttle;
    let n_queued = r.len_hint()?;
    for _ in 0..n_queued {
        let qg = read_queued_group(r)?;
        // Front-to-back pushes re-derive the cached queue load with the
        // exact same summation order as the original run.
        node.queue
            .push(qg)
            .map_err(|_| corrupt("queued groups exceed queue capacity"))?;
    }
    Ok(node)
}

fn read_processor(r: &mut SnapReader<'_>) -> Result<Processor, SnapshotError> {
    let speed_mips = r.f64_finite()?;
    if speed_mips <= 0.0 {
        return Err(corrupt(format!(
            "processor speed {speed_mips} not positive"
        )));
    }
    let p_peak = r.f64_finite()?;
    let state = read_proc_state(r)?;
    let last_transition = read_time(r)?;
    let busy_time = r.f64_time()?;
    let idle_time = r.f64_time()?;
    let sleep_time = r.f64_time()?;
    let failed_time = r.f64_time()?;
    let energy = r.f64_time()?;
    let tasks_executed = r.u64()?;
    let p_idle = r.f64_finite()?;
    let p_sleep = r.f64_finite()?;
    Ok(Processor::from_parts(
        speed_mips,
        p_peak,
        state,
        last_transition,
        busy_time,
        idle_time,
        sleep_time,
        failed_time,
        energy,
        tasks_executed,
        p_idle,
        p_sleep,
    ))
}

fn read_proc_state(r: &mut SnapReader<'_>) -> Result<ProcState, SnapshotError> {
    match r.u8()? {
        0 => Ok(ProcState::Idle),
        1 => Ok(ProcState::Busy {
            task: TaskId(r.u64()?),
            group: GroupId(r.u64()?),
            finish: read_time(r)?,
            power: r.f64_finite()?,
        }),
        2 => Ok(ProcState::Asleep),
        3 => Ok(ProcState::Waking {
            until: read_time(r)?,
        }),
        4 => Ok(ProcState::Failed),
        t => Err(corrupt(format!("unknown processor-state tag {t}"))),
    }
}

fn read_queued_group(r: &mut SnapReader<'_>) -> Result<QueuedGroup, SnapshotError> {
    let id = GroupId(r.u64()?);
    let policy = read_policy(r)?;
    let n = r.len_hint()?;
    if n == 0 {
        return Err(corrupt(format!("queued group {} is empty", id.0)));
    }
    let mut tasks = Vec::with_capacity(n);
    for _ in 0..n {
        tasks.push(read_task(r)?);
    }
    // Re-validate the `TaskGroup::new` invariants instead of re-running the
    // sort: the restored order must be byte-identical to what was saved.
    for pair in tasks.windows(2) {
        if (pair[0].deadline, pair[0].id) > (pair[1].deadline, pair[1].id) {
            return Err(corrupt(format!("group {} tasks not in EDF order", id.0)));
        }
    }
    if let GroupPolicy::Identical(p) = policy {
        if tasks.iter().any(|t| t.priority != p) {
            return Err(corrupt(format!(
                "identical-priority group {} holds mixed classes",
                id.0
            )));
        }
    }
    let group = TaskGroup { id, tasks, policy };
    let enqueued_at = read_time(r)?;
    let pw = r.f64_finite()?;
    let next_start = r.usize()?;
    if next_start > group.len() {
        return Err(corrupt(format!(
            "group {}: next_start {next_start} beyond {} members",
            id.0,
            group.len()
        )));
    }
    let running = r.u32()?;
    let done = r.u32()?;
    let lost = r.u32()?;
    let met = r.u32()?;
    let members = group.len();
    if (running as usize) > members || (done + lost) as usize > members || met > done {
        return Err(corrupt(format!(
            "group {}: execution counters exceed {members} members",
            id.0
        )));
    }
    let first_start = read_opt_time(r)?;
    let split_mode = r.bool()?;
    let assign_error = r.f64_finite()?;
    Ok(QueuedGroup {
        group,
        enqueued_at,
        pw,
        next_start,
        running,
        done,
        lost,
        met,
        first_start,
        split_mode,
        assign_error,
    })
}

fn read_policy(r: &mut SnapReader<'_>) -> Result<GroupPolicy, SnapshotError> {
    match r.u8()? {
        0 => Ok(GroupPolicy::Mixed),
        1 => Ok(GroupPolicy::Identical(read_priority(r)?)),
        t => Err(corrupt(format!("unknown group-policy tag {t}"))),
    }
}

fn read_priority(r: &mut SnapReader<'_>) -> Result<Priority, SnapshotError> {
    match r.u8()? {
        0 => Ok(Priority::Low),
        1 => Ok(Priority::Medium),
        2 => Ok(Priority::High),
        t => Err(corrupt(format!("unknown priority tag {t}"))),
    }
}

fn read_task(r: &mut SnapReader<'_>) -> Result<Task, SnapshotError> {
    Task::snap_read(r)
}

fn read_partial(r: &mut SnapReader<'_>, platform: &Platform) -> Result<Partial, SnapshotError> {
    let node = match r.u8()? {
        0 => None,
        1 => {
            let n = NodeAddr {
                site: SiteId(r.u32()?),
                node: r.u32()?,
            };
            check_node_addr(platform, n)?;
            Some(n)
        }
        t => return Err(corrupt(format!("invalid presence byte {t:#04x}"))),
    };
    Ok(Partial {
        node,
        group: r.opt_u64()?.map(GroupId),
        dispatched: read_opt_time(r)?,
        started: read_opt_time(r)?,
        finished: read_opt_time(r)?,
        failed_at: read_opt_time(r)?,
        met: r.bool()?,
        split: r.bool()?,
        attempts: r.u32()?,
    })
}

fn read_planned_fault(
    r: &mut SnapReader<'_>,
    platform: &Platform,
) -> Result<PlannedFault, SnapshotError> {
    let at = read_time(r)?;
    let target = match r.u8()? {
        0 => {
            let p = ProcAddr {
                node: NodeAddr {
                    site: SiteId(r.u32()?),
                    node: r.u32()?,
                },
                proc: r.u32()?,
            };
            check_proc_addr(platform, p)?;
            FaultTarget::Proc(p)
        }
        1 => {
            let n = NodeAddr {
                site: SiteId(r.u32()?),
                node: r.u32()?,
            };
            check_node_addr(platform, n)?;
            FaultTarget::Node(n)
        }
        t => return Err(corrupt(format!("unknown fault-target tag {t}"))),
    };
    let recover_at = read_opt_time(r)?;
    if let Some(rec) = recover_at {
        if rec <= at {
            return Err(corrupt("fault recovery does not come after the failure"));
        }
    }
    Ok(PlannedFault {
        at,
        target,
        recover_at,
    })
}

fn read_ev(
    r: &mut SnapReader<'_>,
    platform: &Platform,
    num_tasks: usize,
    plan_len: usize,
) -> Result<Ev, SnapshotError> {
    match r.u8()? {
        0 => {
            let i = r.u32()?;
            if (i as usize) >= num_tasks {
                return Err(corrupt(format!("arrival index {i} out of range")));
            }
            Ok(Ev::Arrival(i))
        }
        tag @ (1 | 2) => {
            let p = ProcAddr {
                node: NodeAddr {
                    site: SiteId(r.u32()?),
                    node: r.u32()?,
                },
                proc: r.u32()?,
            };
            check_proc_addr(platform, p)?;
            let epoch = r.u32()?;
            Ok(if tag == 1 {
                Ev::TaskDone(p, epoch)
            } else {
                Ev::WakeDone(p, epoch)
            })
        }
        3 => Ok(Ev::Tick),
        4 => {
            let i = r.u32()?;
            if (i as usize) >= plan_len {
                return Err(corrupt(format!("fault index {i} out of range")));
            }
            Ok(Ev::Fault(i))
        }
        5 => {
            let i = r.u32()?;
            if (i as usize) >= plan_len {
                return Err(corrupt(format!("recovery index {i} out of range")));
            }
            Ok(Ev::Recover(i))
        }
        t => Err(corrupt(format!("unknown engine-event tag {t}"))),
    }
}

fn check_node_addr(platform: &Platform, n: NodeAddr) -> Result<(), SnapshotError> {
    let site = platform
        .sites
        .get(n.site.0 as usize)
        .ok_or_else(|| corrupt(format!("node address {n}: site out of range")))?;
    if (n.node as usize) >= site.nodes.len() {
        return Err(corrupt(format!("node address {n}: node out of range")));
    }
    Ok(())
}

fn check_proc_addr(platform: &Platform, p: ProcAddr) -> Result<(), SnapshotError> {
    check_node_addr(platform, p.node)?;
    let node = &platform.sites[p.node.site.0 as usize].nodes[p.node.node as usize];
    if (p.proc as usize) >= node.num_processors() {
        return Err(corrupt(format!("processor address {p} out of range")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::oracle::replay_divergence;
    use crate::scheduler::Command;
    use crate::view::PlatformView;
    use simcore::rng::RngStream;
    use workload::{Workload, WorkloadSpec};

    /// FCFS test scheduler (mirrors the engine test suite) with its pending
    /// buffer round-tripped through the checkpoint hooks.
    struct Fcfs {
        name: &'static str,
        pending: Vec<Task>,
    }

    impl Fcfs {
        fn new() -> Self {
            Fcfs {
                name: "fcfs-test",
                pending: Vec::new(),
            }
        }
    }

    impl Scheduler for Fcfs {
        fn name(&self) -> &str {
            self.name
        }
        fn on_arrivals(&mut self, _now: SimTime, _site: SiteId, tasks: Vec<Task>) {
            self.pending.extend(tasks);
        }
        fn dispatch(&mut self, _now: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
            let mut cmds = Vec::new();
            let mut remaining = Vec::new();
            for task in self.pending.drain(..) {
                let best = view
                    .site_nodes(task.site)
                    .filter(|n| n.queue_available() > 0 && n.available_processors() > 0)
                    .max_by(|a, b| a.queue_available().cmp(&b.queue_available()));
                match best {
                    Some(n) => cmds.push(Command::Dispatch {
                        node: n.addr(),
                        tasks: vec![task],
                        policy: GroupPolicy::Mixed,
                    }),
                    None => remaining.push(task),
                }
            }
            self.pending = remaining;
            cmds
        }
        fn save_state(&mut self, w: &mut SnapWriter) {
            w.usize(self.pending.len());
            for t in &self.pending {
                write_task(w, t);
            }
        }
        fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
            let n = r.len_hint()?;
            let mut pending = Vec::with_capacity(n);
            for _ in 0..n {
                pending.push(read_task(r)?);
            }
            self.pending = pending;
            Ok(())
        }
    }

    fn setup(seed: u64, n_tasks: usize) -> (Platform, Vec<Task>) {
        let rng = RngStream::root(seed);
        let platform = Platform::generate(PlatformSpec::small(2, 3, 4), &rng.derive("p"));
        let wl = Workload::generate(
            WorkloadSpec::paper(n_tasks, 2, platform.reference_speed()),
            &rng.derive("w"),
        );
        (platform, wl.tasks)
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("arl-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snapshots_in(dir: &PathBuf) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("checkpoint dir exists")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "snap"))
            .collect();
        files.sort();
        files
    }

    /// Golden uninterrupted run vs. a checkpointed run vs. a resume from
    /// every snapshot that was written: all bit-identical under the oracle.
    fn roundtrip_all_checkpoints(engine: &ExecEngine, seed: u64, n_tasks: usize, tag: &str) {
        let golden = {
            let (p, t) = setup(seed, n_tasks);
            engine.run(p, t, &mut Fcfs::new())
        };
        let dir = scratch_dir(tag);
        let ck_cfg = CheckpointConfig::new(40, &dir).with_meta(vec![7, 7, 7]);
        let ck = {
            let (p, t) = setup(seed, n_tasks);
            engine.run_with_checkpoints(p, t, &mut Fcfs::new(), &ck_cfg)
        };
        assert!(ck.write_error.is_none(), "{:?}", ck.write_error);
        assert!(
            ck.checkpoints_written >= 3,
            "too few checkpoints to be a real test"
        );
        if let Some(d) = replay_divergence(&golden, &ck.result) {
            panic!("checkpointing perturbed the run: {d}");
        }
        let files = snapshots_in(&dir);
        assert_eq!(files.len() as u64, ck.checkpoints_written);
        for f in &files {
            let payload = snapshot::read_file(f).expect("snapshot readable");
            assert_eq!(snapshot_meta(&payload).unwrap(), vec![7, 7, 7]);
            let mut sched = Fcfs::new();
            let resumed = resume_from_payload(&payload, &mut sched).expect("resume succeeds");
            if let Some(d) = replay_divergence(&golden, &resumed) {
                panic!("resume from {} diverged: {d}", f.display());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_matches_golden_no_faults() {
        let engine = ExecEngine::new(ExecConfig {
            split_enabled: true,
            ..ExecConfig::default()
        });
        roundtrip_all_checkpoints(&engine, 11, 160, "plain");
    }

    #[test]
    fn resume_matches_golden_with_faults() {
        let plan = FaultPlan::from_events(vec![
            PlannedFault {
                at: SimTime::new(20.0),
                target: FaultTarget::Proc(ProcAddr {
                    node: NodeAddr::new(0, 0),
                    proc: 1,
                }),
                recover_at: Some(SimTime::new(45.0)),
            },
            PlannedFault {
                at: SimTime::new(30.0),
                target: FaultTarget::Node(NodeAddr::new(1, 1)),
                recover_at: Some(SimTime::new(60.0)),
            },
            PlannedFault {
                at: SimTime::new(38.0),
                target: FaultTarget::Node(NodeAddr::new(0, 2)),
                recover_at: None,
            },
        ]);
        let engine = ExecEngine::new(ExecConfig {
            split_enabled: true,
            faults: FaultSpec {
                enabled: true,
                ..FaultSpec::default()
            },
            ..ExecConfig::default()
        })
        .with_fault_plan(plan);
        roundtrip_all_checkpoints(&engine, 17, 160, "faults");
    }

    #[test]
    fn scheduler_name_mismatch_is_typed_error() {
        let (p, t) = setup(11, 60);
        let dir = scratch_dir("name-mismatch");
        let ck_cfg = CheckpointConfig::new(40, &dir);
        let engine = ExecEngine::new(ExecConfig::default());
        let ck = engine.run_with_checkpoints(p, t, &mut Fcfs::new(), &ck_cfg);
        assert!(ck.write_error.is_none());
        let files = snapshots_in(&dir);
        let payload = snapshot::read_file(&files[0]).unwrap();
        let mut other = Fcfs::new();
        other.name = "not-fcfs";
        match resume_from_payload(&payload, &mut other) {
            Err(SnapshotError::Corrupt(msg)) => {
                assert!(
                    msg.contains("fcfs-test") && msg.contains("not-fcfs"),
                    "{msg}"
                );
            }
            r => panic!("expected scheduler-mismatch error, got {r:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_payload_is_typed_error_never_panic() {
        let (p, t) = setup(11, 60);
        let dir = scratch_dir("truncate");
        let ck_cfg = CheckpointConfig::new(40, &dir);
        let engine = ExecEngine::new(ExecConfig::default());
        let ck = engine.run_with_checkpoints(p, t, &mut Fcfs::new(), &ck_cfg);
        assert!(ck.checkpoints_written >= 1);
        let files = snapshots_in(&dir);
        let payload = snapshot::read_file(files.last().unwrap()).unwrap();
        // Cut the payload at a spread of points; every prefix must decode
        // to a typed error, never a panic or an accidental success.
        let step = (payload.len() / 23).max(1);
        for cut in (0..payload.len()).step_by(step) {
            let err = resume_from_payload(&payload[..cut], &mut Fcfs::new());
            assert!(
                err.is_err(),
                "truncation at {cut} of {} decoded",
                payload.len()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_checkpoint_dir_does_not_abort_the_run() {
        let golden = {
            let (p, t) = setup(11, 80);
            ExecEngine::new(ExecConfig::default()).run(p, t, &mut Fcfs::new())
        };
        // A file where the directory should be makes create_dir_all fail.
        let blocker = std::env::temp_dir().join(format!("arl-ckpt-{}-blocker", std::process::id()));
        std::fs::write(&blocker, b"in the way").unwrap();
        let ck_cfg = CheckpointConfig::new(40, &blocker);
        let ck = {
            let (p, t) = setup(11, 80);
            ExecEngine::new(ExecConfig::default()).run_with_checkpoints(
                p,
                t,
                &mut Fcfs::new(),
                &ck_cfg,
            )
        };
        assert!(matches!(ck.write_error, Some(SnapshotError::Io(_))));
        assert_eq!(ck.checkpoints_written, 0);
        if let Some(d) = replay_divergence(&golden, &ck.result) {
            panic!("failed checkpointing perturbed the run: {d}");
        }
        let _ = std::fs::remove_file(&blocker);
    }
}
