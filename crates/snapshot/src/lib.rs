//! Versioned, checksummed snapshot container and byte codec.
//!
//! A snapshot file is a self-describing binary blob:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "ARLSNAP\0"
//! 8       1     format version (currently 1)
//! 9       8     payload length, little-endian u64
//! 17      4     CRC-32 (IEEE) of the payload, little-endian u32
//! 21      n     payload bytes
//! ```
//!
//! The payload itself is an application-defined byte stream built with
//! [`SnapWriter`] and decoded with [`SnapReader`]. All multi-byte values are
//! little-endian; floats are serialized as raw IEEE-754 bit patterns so a
//! round trip is bit-exact. Every decode path is bounds-checked and returns
//! a typed [`SnapshotError`] — corrupt, truncated, or mismatched input must
//! never panic.
//!
//! Files are written torn-write-safe by [`write_atomic`]: the bytes land in
//! a temporary sibling file which is fsync'd and then atomically renamed
//! over the destination, followed by a directory fsync. A reader therefore
//! observes either the previous snapshot or the complete new one, never a
//! partial write.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"ARLSNAP\0";

/// Current snapshot format version.
pub const FORMAT_VERSION: u8 = 1;

/// Size of the fixed header preceding the payload.
pub const HEADER_LEN: usize = 8 + 1 + 8 + 4;

/// Typed failure modes of snapshot encoding, decoding, and file I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The input ended before the expected number of bytes.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The format version byte is not one this build understands.
    BadVersion {
        /// Version byte found in the header.
        found: u8,
    },
    /// The payload checksum does not match the header.
    BadChecksum {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC computed over the payload.
        actual: u32,
    },
    /// The payload decoded to structurally invalid data.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} bytes, only {available} available"
            ),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version {FORMAT_VERSION})"
            ),
            SnapshotError::BadChecksum { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            SnapshotError::Corrupt(why) => write!(f, "snapshot payload corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Shorthand for a corrupt-payload error.
pub fn corrupt(why: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(why.into())
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected).
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Byte-stream writer.
// ---------------------------------------------------------------------------

/// Append-only little-endian byte-stream encoder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a u64 (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its raw bit pattern (bit-exact round trip,
    /// including NaN payloads and infinities).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed raw byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes an `Option<f64>` as a presence byte plus the raw bits.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-stream reader.
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian byte-stream decoder.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a u64 and checks it fits a `usize` on this platform.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| corrupt(format!("length {v} exceeds platform usize")))
    }

    /// Reads a length that must also be plausible given the bytes left —
    /// guards against huge allocations from corrupt length prefixes.
    pub fn len_hint(&mut self) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        // Every element of a length-prefixed sequence occupies >= 1 byte.
        if n > self.remaining() {
            return Err(corrupt(format!(
                "sequence length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` from its raw bit pattern (any bits, including NaN).
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `f64` and rejects non-finite values.
    pub fn f64_finite(&mut self) -> Result<f64, SnapshotError> {
        let v = self.f64()?;
        if !v.is_finite() {
            return Err(corrupt(format!("expected finite float, got {v}")));
        }
        Ok(v)
    }

    /// Reads an `f64` and rejects anything that is not finite and `>= 0`
    /// (the invariant of simulation times and durations).
    pub fn f64_time(&mut self) -> Result<f64, SnapshotError> {
        let v = self.f64()?;
        if !v.is_finite() || v < 0.0 {
            return Err(corrupt(format!(
                "expected non-negative finite time, got {v}"
            )));
        }
        Ok(v)
    }

    /// Reads a bool, rejecting bytes other than 0 and 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len_hint()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    /// Reads a length-prefixed raw byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len_hint()?;
        self.take(n)
    }

    /// Reads an `Option<u64>` written by [`SnapWriter::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an `Option<f64>` written by [`SnapWriter::opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }
}

// ---------------------------------------------------------------------------
// Container framing.
// ---------------------------------------------------------------------------

/// Wraps a payload in the versioned, checksummed snapshot container.
pub fn encode_container(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates container framing and returns the payload slice.
///
/// Checks, in order: magic, version, declared length vs. actual bytes, and
/// the payload CRC. Each failure maps to its own [`SnapshotError`] variant.
pub fn decode_container(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < HEADER_LEN {
        // An empty or obviously short file: distinguish "not even a magic"
        // from "header cut off" by checking what prefix we do have.
        if !MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = bytes[8];
    if version != FORMAT_VERSION {
        return Err(SnapshotError::BadVersion { found: version });
    }
    let declared = u64::from_le_bytes(bytes[9..17].try_into().expect("8-byte slice"));
    let declared = usize::try_from(declared).map_err(|_| {
        corrupt(format!(
            "declared payload length {declared} overflows usize"
        ))
    })?;
    let expected_crc = u32::from_le_bytes(bytes[17..21].try_into().expect("4-byte slice"));
    let body = &bytes[HEADER_LEN..];
    if body.len() < declared {
        return Err(SnapshotError::Truncated {
            needed: declared,
            available: body.len(),
        });
    }
    if body.len() > declared {
        return Err(corrupt(format!(
            "trailing garbage: payload declared {declared} bytes, file carries {}",
            body.len()
        )));
    }
    let actual = crc32(body);
    if actual != expected_crc {
        return Err(SnapshotError::BadChecksum {
            expected: expected_crc,
            actual,
        });
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Torn-write-safe file I/O.
// ---------------------------------------------------------------------------

/// Writes `payload` (container-framed) to `path` atomically.
///
/// The bytes are written to a temporary sibling, fsync'd, renamed over the
/// destination, and the containing directory is fsync'd, so a crash at any
/// point leaves either the old snapshot or the complete new one on disk.
pub fn write_atomic(path: &Path, payload: &[u8]) -> Result<(), SnapshotError> {
    let framed = encode_container(payload);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| corrupt("snapshot path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let mut f = std::fs::File::create(&tmp_path)?;
    f.write_all(&framed)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp_path, path) {
        let _ = std::fs::remove_file(&tmp_path);
        return Err(SnapshotError::Io(e));
    }
    if let Some(d) = dir {
        // Persist the rename itself. Directory fsync is best-effort on
        // platforms where opening a directory for sync is not supported.
        if let Ok(dh) = std::fs::File::open(d) {
            let _ = dh.sync_all();
        }
    }
    Ok(())
}

/// Reads a snapshot file, validates the container, and returns the payload.
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    let bytes = std::fs::read(path)?;
    let payload = decode_container(&bytes)?;
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitive_round_trip_is_bit_exact() {
        let mut w = SnapWriter::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(12345);
        w.f64(-0.0);
        w.f64(f64::INFINITY);
        w.f64(1.0 / 3.0);
        w.bool(true);
        w.bool(false);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.opt_u64(Some(7));
        w.opt_u64(None);
        w.opt_f64(Some(f64::NEG_INFINITY));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.f64().unwrap(), 1.0 / 3.0);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.opt_u64().unwrap(), Some(7));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(f64::NEG_INFINITY));
        assert!(r.is_exhausted());
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut w = SnapWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        match r.u64() {
            Err(SnapshotError::Truncated { needed, available }) => {
                assert_eq!(needed, 8);
                assert_eq!(available, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn reader_rejects_bogus_lengths() {
        let mut w = SnapWriter::new();
        w.usize(usize::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            SnapReader::new(&bytes).len_hint(),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn reader_rejects_bad_bool_and_bad_utf8() {
        let mut r = SnapReader::new(&[7]);
        assert!(matches!(r.bool(), Err(SnapshotError::Corrupt(_))));

        let mut w = SnapWriter::new();
        w.usize(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            SnapReader::new(&bytes).str(),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn f64_validators_reject_invalid_values() {
        let mut w = SnapWriter::new();
        w.f64(f64::NAN);
        w.f64(-1.5);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.f64_finite(), Err(SnapshotError::Corrupt(_))));
        assert!(matches!(r.f64_time(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn container_round_trip() {
        let payload = b"some payload bytes".to_vec();
        let framed = encode_container(&payload);
        assert_eq!(decode_container(&framed).unwrap(), &payload[..]);
    }

    #[test]
    fn empty_file_is_rejected_without_panic() {
        // An empty prefix trivially matches the magic, so an empty file
        // reports as a truncation (zero bytes available), not BadMagic.
        assert!(matches!(
            decode_container(&[]),
            Err(SnapshotError::Truncated { available: 0, .. })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut framed = encode_container(b"x");
        framed[0] = b'Z';
        assert!(matches!(
            decode_container(&framed),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_byte_is_rejected() {
        let mut framed = encode_container(b"x");
        framed[8] = 99;
        match decode_container(&framed) {
            Err(SnapshotError::BadVersion { found }) => assert_eq!(found, 99),
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_container_is_rejected() {
        let framed = encode_container(b"0123456789");
        // Cut the payload short.
        assert!(matches!(
            decode_container(&framed[..framed.len() - 3]),
            Err(SnapshotError::Truncated { .. })
        ));
        // Cut inside the header, after the magic.
        assert!(matches!(
            decode_container(&framed[..10]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut framed = encode_container(b"checksum-protected payload");
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        assert!(matches!(
            decode_container(&framed),
            Err(SnapshotError::BadChecksum { .. })
        ));
    }

    #[test]
    fn flipped_crc_byte_fails_checksum() {
        let mut framed = encode_container(b"payload");
        framed[17] ^= 0xFF;
        assert!(matches!(
            decode_container(&framed),
            Err(SnapshotError::BadChecksum { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut framed = encode_container(b"payload");
        framed.push(0);
        assert!(matches!(
            decode_container(&framed),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn write_atomic_then_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let payload = vec![42u8; 1000];
        write_atomic(&path, &payload).unwrap();
        assert_eq!(read_file(&path).unwrap(), payload);
        // Overwrite is atomic too: the temp file must be gone afterwards.
        write_atomic(&path, b"second").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"second");
        assert!(!dir.join("state.snap.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_file(Path::new("/definitely/not/here.snap")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        // And the error formats without panicking.
        let _ = format!("{err}");
    }
}
