//! JSONL structured-event sink: one self-contained JSON object per
//! line.
//!
//! Line atomicity: each record is formatted into a private `String`
//! (newline included) and written with a single `write_all` while
//! holding the writer lock, so lines from replicated runner threads
//! sharing one sink never interleave.

use crate::fmt::{push_f64, push_fields, push_json_str};
use crate::recorder::{Fields, Progress, Recorder, TraceLevel};
use crate::stats::{StatsCore, TelemetrySummary};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A boxed output the sink can write to; `File` in production, a shared
/// buffer in tests.
pub type SinkWriter = Box<dyn Write + Send>;

struct JsonlOut {
    w: SinkWriter,
    /// First write/flush error; later errors are dropped so the root
    /// cause (e.g. the ENOSPC that started it all) is what gets reported.
    err: Option<io::Error>,
}

impl JsonlOut {
    fn note(&mut self, r: io::Result<()>) {
        if let Err(e) = r {
            self.err.get_or_insert(e);
        }
    }
}

pub struct JsonlSink {
    level: TraceLevel,
    out: Mutex<JsonlOut>,
    stats: StatsCore,
}

impl JsonlSink {
    /// Create (truncate) `path` and record events up to `level`.
    pub fn create<P: AsRef<Path>>(path: P, level: TraceLevel) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file)), level))
    }

    /// Build a sink over any writer (used by tests).
    pub fn to_writer(out: SinkWriter, level: TraceLevel) -> Self {
        JsonlSink {
            level,
            out: Mutex::new(JsonlOut { w: out, err: None }),
            stats: StatsCore::new(),
        }
    }

    /// Poison-recovering lock: a panic on another thread mid-write must
    /// not cascade here — the sink keeps accepting lines and still
    /// flushes on drop during the unwind.
    fn lock(&self) -> std::sync::MutexGuard<'_, JsonlOut> {
        self.out.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn write_line(&self, line: &str) {
        debug_assert!(line.ends_with('\n'));
        let mut out = self.lock();
        // A full line per syscall-visible write: atomic w.r.t. other
        // threads sharing this sink.
        let r = out.w.write_all(line.as_bytes());
        out.note(r);
    }

    fn record(&self, kind: &str, name: &str, t: f64, track: u32) -> String {
        let mut line = String::with_capacity(128);
        line.push_str("{\"type\":");
        push_json_str(&mut line, kind);
        line.push_str(",\"name\":");
        push_json_str(&mut line, name);
        line.push_str(",\"t\":");
        push_f64(&mut line, t);
        line.push_str(",\"track\":");
        line.push_str(&track.to_string());
        line
    }
}

impl Recorder for JsonlSink {
    fn wants(&self, level: TraceLevel) -> bool {
        self.level.accepts(level)
    }

    fn event(&self, name: &str, t: f64, track: u32, fields: Fields<'_>) {
        let mut line = self.record("event", name, t, track);
        line.push_str(",\"fields\":");
        push_fields(&mut line, fields);
        line.push_str("}\n");
        self.write_line(&line);
    }

    fn span_begin(&self, name: &str, id: u64, t: f64, track: u32, fields: Fields<'_>) {
        let mut line = self.record("span_begin", name, t, track);
        line.push_str(",\"id\":");
        line.push_str(&id.to_string());
        line.push_str(",\"fields\":");
        push_fields(&mut line, fields);
        line.push_str("}\n");
        self.write_line(&line);
    }

    fn span_end(&self, name: &str, id: u64, t: f64, track: u32) {
        let mut line = self.record("span_end", name, t, track);
        line.push_str(",\"id\":");
        line.push_str(&id.to_string());
        line.push_str("}\n");
        self.write_line(&line);
    }

    fn gauge(&self, name: &str, t: f64, value: f64) {
        let mut line = self.record("gauge", name, t, 0);
        line.push_str(",\"value\":");
        push_f64(&mut line, value);
        line.push_str("}\n");
        self.write_line(&line);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.stats.counter_add(name, delta);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        self.stats.histogram(name, value);
    }

    fn progress(&self, _p: &Progress) {}

    fn summary(&self) -> Option<TelemetrySummary> {
        Some(self.stats.summary())
    }

    fn finish(&self) {
        let mut out = self.lock();
        let r = out.w.flush();
        out.note(r);
    }

    fn io_error(&self) -> Option<String> {
        self.lock().err.as_ref().map(|e| e.to_string())
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::Value;
    use std::sync::Arc;

    /// A writer handing every byte to a shared buffer, so tests can read
    /// back what the sink wrote.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn every_line_is_valid_json() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::to_writer(Box::new(buf.clone()), TraceLevel::All);
        sink.event("cycle", 1.25, 3, &[("reward", Value::U64(1))]);
        sink.span_begin("group", 42, 2.0, 7, &[("site", Value::U64(0))]);
        sink.span_end("group", 42, 3.5, 7);
        sink.gauge("queue", 4.0, 9.0);
        sink.finish();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v = json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
            assert!(v.get("type").is_some() && v.get("t").is_some());
        }
        let begin = json::parse(lines[1]).unwrap();
        assert_eq!(begin.get("id").unwrap().as_f64(), Some(42.0));
        assert_eq!(begin.path(&["fields", "site"]).unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn level_gating_respected() {
        let sink = JsonlSink::to_writer(Box::new(SharedBuf::default()), TraceLevel::Cycles);
        assert!(sink.wants(TraceLevel::Cycles));
        assert!(!sink.wants(TraceLevel::Decisions));
        assert!(!sink.wants(TraceLevel::All));
    }

    /// A writer whose disk is always full.
    pub(crate) struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
        }
    }

    #[test]
    fn write_failure_is_latched_not_panicked() {
        let sink = JsonlSink::to_writer(Box::new(FailingWriter), TraceLevel::All);
        assert!(sink.io_error().is_none());
        sink.event("cycle", 1.0, 0, &[]);
        sink.gauge("queue", 2.0, 3.0);
        sink.finish();
        let err = sink.io_error().expect("first error latched");
        assert!(err.contains("disk full"), "unexpected error: {err}");
    }

    #[test]
    fn poisoned_lock_recovers_and_keeps_writing() {
        let buf = SharedBuf::default();
        let sink =
            std::sync::Arc::new(JsonlSink::to_writer(Box::new(buf.clone()), TraceLevel::All));
        // Poison the writer mutex by panicking while holding it.
        let poisoner = sink.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.out.lock().unwrap();
            panic!("poison");
        })
        .join();
        sink.event("after", 1.0, 0, &[]);
        sink.finish();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"after\""));
        assert!(sink.io_error().is_none());
    }
}
