//! Counter/histogram accumulation shared by the real sinks, and the
//! end-of-run `TelemetrySummary` attached to `RunResult`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A monotonic counter total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterTotal {
    pub name: String,
    pub total: u64,
}

/// Quantile summary of one histogram series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

/// End-of-run telemetry rollup: counter totals plus histogram
/// quantiles, both sorted by name (BTreeMap order) for deterministic
/// output.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    pub counters: Vec<CounterTotal>,
    pub histograms: Vec<HistogramSummary>,
}

/// Thread-safe counter and histogram storage embedded in each sink.
///
/// Counters are keyed by `&'static str` so the hot path never hashes or
/// allocates a `String`; histogram samples are kept raw and reduced to
/// quantiles once at summary time.
#[derive(Debug, Default)]
pub struct StatsCore {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, Vec<f64>>>,
}

impl StatsCore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut c = self.counters.lock().expect("counter lock");
        *c.entry(name).or_insert(0) += delta;
    }

    pub fn histogram(&self, name: &'static str, value: f64) {
        let mut h = self.histograms.lock().expect("histogram lock");
        h.entry(name).or_default().push(value);
    }

    /// Reduce everything recorded so far into a [`TelemetrySummary`].
    pub fn summary(&self) -> TelemetrySummary {
        let counters = self
            .counters
            .lock()
            .expect("counter lock")
            .iter()
            .map(|(name, total)| CounterTotal {
                name: (*name).to_string(),
                total: *total,
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram lock")
            .iter()
            .map(|(name, samples)| {
                let count = samples.len() as u64;
                let mean = if samples.is_empty() {
                    0.0
                } else {
                    samples.iter().sum::<f64>() / samples.len() as f64
                };
                let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                HistogramSummary {
                    name: (*name).to_string(),
                    count,
                    mean,
                    p50: quantile(samples, 0.5).unwrap_or(0.0),
                    p95: quantile(samples, 0.95).unwrap_or(0.0),
                    p99: quantile(samples, 0.99).unwrap_or(0.0),
                    max: if max.is_finite() { max } else { 0.0 },
                }
            })
            .collect();
        TelemetrySummary {
            counters,
            histograms,
        }
    }
}

/// Linear-interpolation quantile over an unsorted sample (sort-copy),
/// mirroring `simcore::stats::quantile` — re-implemented here because
/// `telemetry` sits below `simcore` in the dependency graph. The sort
/// comparator (`total_cmp`) and the interpolation formula
/// (`lo + (hi - lo) * frac`) are kept textually identical to the
/// `simcore` copy so the two agree to the last bit; the
/// `quantile_equivalence` test in `simcore` pins this down. The only
/// deliberate difference: out-of-range `q` is clamped here instead of
/// asserted, because summary rendering must never panic a run.
pub fn quantile(sample: &[f64], q: f64) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let mut xs = sample.to_vec();
    // total_cmp: a NaN sample sorts to the end instead of panicking the
    // whole summary.
    xs.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(xs[lo] + (xs[hi] - xs[lo]) * frac)
}

impl TelemetrySummary {
    /// Look up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.total)
    }

    /// Look up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let s = StatsCore::new();
        s.counter_add("b", 2);
        s.counter_add("a", 1);
        s.counter_add("b", 3);
        let sum = s.summary();
        assert_eq!(sum.counters.len(), 2);
        assert_eq!(sum.counters[0].name, "a");
        assert_eq!(sum.counter("b"), Some(5));
        assert_eq!(sum.counter("missing"), None);
    }

    #[test]
    fn histogram_quantiles() {
        let s = StatsCore::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.histogram("lat", v);
        }
        let sum = s.summary();
        let h = sum.histogram("lat").expect("lat histogram");
        assert_eq!(h.count, 5);
        assert!((h.mean - 3.0).abs() < 1e-12);
        assert!((h.p50 - 3.0).abs() < 1e-12);
        assert_eq!(h.max, 5.0);
        assert!(h.p95 <= h.max && h.p50 <= h.p95);
    }

    #[test]
    fn empty_quantile_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
    }
}
