//! Live metrics registry: labeled counters, gauges and fixed-bucket
//! histograms with dependency-free Prometheus text-format exposition.
//!
//! Design goals, in order:
//!
//! 1. **Allocation-free hot path.** All allocation happens at
//!    registration time; [`Counter::add`], [`Gauge::set`] and
//!    [`Histogram::observe`] touch only pre-allocated atomics. Handles
//!    are cheap `Arc` clones the caller stores next to its cached
//!    trace-gate booleans, so a run without monitoring pays exactly one
//!    predictable branch per instrumented site.
//! 2. **Sharded counters.** The replicated runner drives many
//!    simulations from a thread pool; counter and histogram cells are
//!    striped per shard (one cache-line-independent row per replication
//!    thread) and summed only at exposition time, so concurrent runs
//!    never contend on a single atomic.
//! 3. **Scrape-safe.** [`MetricsRegistry::write_prometheus`] renders the
//!    Prometheus text exposition format 0.0.4 — `# HELP`/`# TYPE`
//!    headers, escaped label values, cumulative `_bucket` series with a
//!    `+Inf` bound, `_sum`/`_count` — with fully deterministic ordering
//!    (families by name, series by label set), so diffs between scrapes
//!    are meaningful.
//!
//! Registration is idempotent: registering the same (name, label-set)
//! twice returns handles backed by the same cells. Re-registering a name
//! with a different metric kind (or different buckets) is a programmer
//! error and panics.

use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The three metric kinds of the exposition format we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonic counter handle, striped over the registry's shards.
///
/// `shard` selects the stripe; passing a stable per-thread index keeps
/// concurrent increments contention-free. Out-of-range shards wrap.
#[derive(Debug, Clone)]
pub struct Counter {
    cells: Arc<[AtomicU64]>,
}

impl Counter {
    #[inline]
    pub fn add(&self, shard: usize, delta: u64) {
        self.cells[shard % self.cells.len()].fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self, shard: usize) {
        self.add(shard, 1);
    }

    /// Sum over all shards (exposition-time only).
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// A last-value-wins gauge storing an `f64` in atomic bits.
///
/// Gauges are written on tick cadence, not per event, so a single global
/// cell (no shard striping) is deliberate: the freshest write wins, which
/// is the semantics a scraper expects.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle, striped over the registry's shards.
///
/// Per shard the layout is `[bucket_0 .. bucket_{B-1}, count, sum_bits]`
/// where `bucket_i` counts observations with `v <= bounds[i]`
/// (non-cumulative; cumulated at exposition). `sum_bits` accumulates the
/// f64 sample sum with a compare-exchange loop.
#[derive(Debug, Clone)]
pub struct Histogram {
    cells: Arc<[AtomicU64]>,
    bounds: Arc<[f64]>,
}

impl Histogram {
    fn stride(&self) -> usize {
        self.bounds.len() + 2
    }

    #[inline]
    pub fn observe(&self, shard: usize, v: f64) {
        let shards = self.cells.len() / self.stride();
        let base = (shard % shards) * self.stride();
        // First bucket whose upper bound admits the sample; NaN falls
        // through every bound and lands only in count/sum, mirroring
        // Prometheus client behaviour of an observation beyond +Inf.
        if let Some(i) = self.bounds.iter().position(|&le| v <= le) {
            self.cells[base + i].fetch_add(1, Ordering::Relaxed);
        }
        let count = base + self.bounds.len();
        self.cells[count].fetch_add(1, Ordering::Relaxed);
        let sum = &self.cells[count + 1];
        let mut cur = sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations across all shards.
    pub fn count(&self) -> u64 {
        let stride = self.stride();
        let shards = self.cells.len() / stride;
        (0..shards)
            .map(|s| self.cells[s * stride + self.bounds.len()].load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values across all shards.
    pub fn sum(&self) -> f64 {
        let stride = self.stride();
        let shards = self.cells.len() / stride;
        (0..shards)
            .map(|s| {
                f64::from_bits(
                    self.cells[s * stride + self.bounds.len() + 1].load(Ordering::Relaxed),
                )
            })
            .sum()
    }

    /// Merged (shard-summed) non-cumulative bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        let stride = self.stride();
        let shards = self.cells.len() / stride;
        let mut out = vec![0u64; self.bounds.len()];
        for s in 0..shards {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot += self.cells[s * stride + i].load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Bucket-interpolated quantile estimate (q in [0, 1]).
    ///
    /// Assumes uniform density inside each bucket; the first bucket
    /// interpolates from 0 and observations beyond the last bound clamp
    /// to it. `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let mut cum = 0u64;
        let counts = self.bucket_counts();
        for (i, &c) in counts.iter().enumerate() {
            let prev = cum as f64;
            cum += c;
            if (cum as f64) >= rank && c > 0 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = ((rank - prev) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
        }
        // Samples beyond the last bound: clamp to it.
        self.bounds.last().copied()
    }
}

enum Cells {
    Counter(Arc<[AtomicU64]>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<[AtomicU64]>),
}

struct SeriesSlot {
    /// Label pairs sorted by label name; the identity key within a family.
    labels: Vec<(String, String)>,
    cells: Cells,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    /// Histogram bucket upper bounds (`+Inf` implicit); empty otherwise.
    bounds: Arc<[f64]>,
    series: Vec<SeriesSlot>,
}

/// The registry. Metadata lives behind one mutex taken only at
/// registration and exposition time; recorded values live in the
/// lock-free cells the handles point at.
pub struct MetricsRegistry {
    shards: usize,
    families: Mutex<Vec<Family>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().map(|g| g.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry")
            .field("shards", &self.shards)
            .field("families", &n)
            .finish()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_label_name(k), "invalid label name {k:?}");
            assert!(
                *k != "le",
                "label name 'le' is reserved for histogram buckets"
            );
            ((*k).to_string(), (*v).to_string())
        })
        .collect();
    out.sort();
    for pair in out.windows(2) {
        assert!(
            pair[0].0 != pair[1].0,
            "duplicate label name {:?}",
            pair[0].0
        );
    }
    out
}

impl MetricsRegistry {
    /// Single-shard registry.
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// Registry with `shards` counter/histogram stripes (clamped to >= 1).
    /// Size this to the replication thread count.
    pub fn with_shards(shards: usize) -> Self {
        MetricsRegistry {
            shards: shards.max(1),
            families: Mutex::new(Vec::new()),
        }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Family>> {
        // Registration state stays consistent through a panic elsewhere:
        // cells are append-only.
        self.families.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Cells {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        if kind == MetricKind::Histogram {
            assert!(
                !bounds.is_empty(),
                "histogram {name:?} needs at least one bucket"
            );
            assert!(
                bounds.iter().all(|b| b.is_finite()),
                "histogram {name:?} bounds must be finite (+Inf is implicit)"
            );
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "histogram {name:?} bounds must be strictly increasing"
            );
        }
        let labels = sorted_labels(labels);
        let mut families = self.lock();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name:?} re-registered as {:?}, was {:?}",
                    kind,
                    f.kind
                );
                assert!(
                    f.bounds.as_ref() == bounds,
                    "histogram {name:?} re-registered with different buckets"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    bounds: bounds.into(),
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(slot) = family.series.iter().find(|s| s.labels == labels) {
            return match &slot.cells {
                Cells::Counter(c) => Cells::Counter(c.clone()),
                Cells::Gauge(g) => Cells::Gauge(g.clone()),
                Cells::Histogram(h) => Cells::Histogram(h.clone()),
            };
        }
        let cells = match kind {
            MetricKind::Counter => {
                let row: Arc<[AtomicU64]> = (0..self.shards).map(|_| AtomicU64::new(0)).collect();
                Cells::Counter(row)
            }
            MetricKind::Gauge => Cells::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))),
            MetricKind::Histogram => {
                let row: Arc<[AtomicU64]> = (0..self.shards * (bounds.len() + 2))
                    .map(|_| AtomicU64::new(0))
                    .collect();
                Cells::Histogram(row)
            }
        };
        let out = match &cells {
            Cells::Counter(c) => Cells::Counter(c.clone()),
            Cells::Gauge(g) => Cells::Gauge(g.clone()),
            Cells::Histogram(h) => Cells::Histogram(h.clone()),
        };
        family.series.push(SeriesSlot { labels, cells });
        out
    }

    /// Registers (or re-resolves) a labeled counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, &[]) {
            Cells::Counter(cells) => Counter { cells },
            _ => unreachable!("register returned mismatched cells"),
        }
    }

    /// Registers (or re-resolves) a labeled gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels, &[]) {
            Cells::Gauge(bits) => Gauge { bits },
            _ => unreachable!("register returned mismatched cells"),
        }
    }

    /// Registers (or re-resolves) a labeled fixed-bucket histogram.
    /// `bounds` are the finite bucket upper bounds; `+Inf` is implicit.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.register(name, help, MetricKind::Histogram, labels, bounds) {
            Cells::Histogram(cells) => Histogram {
                cells,
                bounds: bounds.into(),
            },
            _ => unreachable!("register returned mismatched cells"),
        }
    }

    /// Renders the registry in Prometheus text exposition format 0.0.4.
    pub fn write_prometheus(&self, out: &mut impl io::Write) -> io::Result<()> {
        out.write_all(self.render().as_bytes())
    }

    /// [`MetricsRegistry::write_prometheus`] into a `String`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.lock();
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));
        for &fi in &order {
            let f = &families[fi];
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.type_name());
            let mut series: Vec<&SeriesSlot> = f.series.iter().collect();
            series.sort_by(|a, b| a.labels.cmp(&b.labels));
            for s in series {
                match &s.cells {
                    Cells::Counter(cells) => {
                        let total: u64 = cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                        push_sample(&mut out, &f.name, "", &s.labels, None, Num::U64(total));
                    }
                    Cells::Gauge(bits) => {
                        let v = f64::from_bits(bits.load(Ordering::Relaxed));
                        push_sample(&mut out, &f.name, "", &s.labels, None, Num::F64(v));
                    }
                    Cells::Histogram(cells) => {
                        let h = Histogram {
                            cells: cells.clone(),
                            bounds: f.bounds.clone(),
                        };
                        let mut cum = 0u64;
                        for (i, c) in h.bucket_counts().into_iter().enumerate() {
                            cum += c;
                            push_sample(
                                &mut out,
                                &f.name,
                                "_bucket",
                                &s.labels,
                                Some(f.bounds[i]),
                                Num::U64(cum),
                            );
                        }
                        let count = h.count();
                        push_sample(
                            &mut out,
                            &f.name,
                            "_bucket",
                            &s.labels,
                            Some(f64::INFINITY),
                            Num::U64(count),
                        );
                        push_sample(
                            &mut out,
                            &f.name,
                            "_sum",
                            &s.labels,
                            None,
                            Num::F64(h.sum()),
                        );
                        push_sample(
                            &mut out,
                            &f.name,
                            "_count",
                            &s.labels,
                            None,
                            Num::U64(count),
                        );
                    }
                }
            }
        }
        out
    }
}

enum Num {
    U64(u64),
    F64(f64),
}

/// One sample line: `name[suffix]{labels[,le="bound"]} value`.
fn push_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    le: Option<f64>,
    value: Num,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value_into(out, v);
            out.push('"');
        }
        if let Some(bound) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(&render_f64(bound));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    match value {
        Num::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Num::F64(v) => out.push_str(&render_f64(v)),
    }
    out.push('\n');
}

/// Exposition-format float rendering: `+Inf`/`-Inf`/`NaN` spellings per
/// the 0.0.4 spec, shortest round-trippable decimal otherwise.
pub fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// HELP-line escaping: backslash and newline only.
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Label-value escaping: backslash, double quote, newline.
fn escape_label_value_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Default decision-latency buckets (seconds): 1 µs .. ~1 s, log-spaced.
pub fn latency_buckets() -> Vec<f64> {
    let mut out = Vec::with_capacity(18);
    let mut b = 1e-6;
    for _ in 0..6 {
        out.push(b);
        out.push(b * 2.5);
        out.push(b * 5.0);
        b *= 10.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_shards() {
        let reg = MetricsRegistry::with_shards(4);
        let c = reg.counter("arls_tasks_total", "Tasks completed.", &[("site", "0")]);
        for shard in 0..8 {
            c.add(shard, 2);
        }
        assert_eq!(c.total(), 16);
        // Re-registration resolves to the same cells.
        let again = reg.counter("arls_tasks_total", "Tasks completed.", &[("site", "0")]);
        again.inc(0);
        assert_eq!(c.total(), 17);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("arls_power_watts", "Power draw.", &[]);
        g.set(12.5);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    fn histogram_counts_sum_and_buckets_agree() {
        let reg = MetricsRegistry::with_shards(2);
        let h = reg.histogram("lat", "Latency.", &[], &[0.1, 1.0, 10.0]);
        for (shard, v) in [(0, 0.05), (1, 0.5), (0, 5.0), (1, 50.0)] {
            h.observe(shard, v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 55.55).abs() < 1e-9);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]); // 50.0 beyond last bound
        let rendered = reg.render();
        // Cumulative buckets: 1, 2, 3, and +Inf == _count == 4.
        assert!(
            rendered.contains("lat_bucket{le=\"0.1\"} 1\n"),
            "{rendered}"
        );
        assert!(
            rendered.contains("lat_bucket{le=\"1.0\"} 2\n"),
            "{rendered}"
        );
        assert!(
            rendered.contains("lat_bucket{le=\"10.0\"} 3\n"),
            "{rendered}"
        );
        assert!(
            rendered.contains("lat_bucket{le=\"+Inf\"} 4\n"),
            "{rendered}"
        );
        assert!(rendered.contains("lat_count 4\n"), "{rendered}");
    }

    #[test]
    fn histogram_quantile_interpolates() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q", "Quantiles.", &[], &[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None);
        for v in [0.5, 1.5, 1.6, 3.0] {
            h.observe(0, v);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((1.0..=2.0).contains(&p50), "p50 {p50} outside its bucket");
        let p100 = h.quantile(1.0).unwrap();
        assert!(
            (2.0..=4.0).contains(&p100),
            "p100 {p100} outside its bucket"
        );
        // Everything beyond the last bound clamps to it.
        let hh = reg.histogram("q2", "Overflow.", &[], &[1.0]);
        hh.observe(0, 99.0);
        assert_eq!(hh.quantile(0.99), Some(1.0));
    }

    #[test]
    fn quantile_with_all_mass_in_overflow_bucket_clamps_finite() {
        // Regression: when every observation lands beyond the last
        // finite bound, no finite bucket satisfies the rank and the
        // estimate must clamp to the last finite edge — never
        // interpolate into the +Inf bucket or return inf/NaN.
        let reg = MetricsRegistry::with_shards(2);
        let h = reg.histogram("ovf", "All overflow.", &[], &[1.0, 2.0, 4.0]);
        for (shard, v) in [(0, 10.0), (1, 100.0), (0, 1e12), (1, f64::INFINITY)] {
            h.observe(shard, v);
        }
        assert_eq!(h.bucket_counts(), vec![0, 0, 0]);
        assert_eq!(h.count(), 4);
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!(est.is_finite(), "q={q} produced non-finite {est}");
            assert_eq!(est, 4.0, "q={q} must clamp to the last finite edge");
        }
        // Mixed mass: high quantiles whose rank exceeds the finite
        // cumulative count clamp the same way.
        let m = reg.histogram("mix", "Partial overflow.", &[], &[1.0, 2.0]);
        m.observe(0, 0.5);
        m.observe(0, 50.0);
        m.observe(0, 50.0);
        let p99 = m.quantile(0.99).unwrap();
        assert_eq!(p99, 2.0, "rank beyond finite buckets clamps to last edge");
    }

    #[test]
    fn exposition_order_is_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta_total", "Last family.", &[]);
        reg.gauge("alpha", "First family.", &[("b", "2")]);
        reg.gauge("alpha", "First family.", &[("a", "1")]);
        let r1 = reg.render();
        let r2 = reg.render();
        assert_eq!(r1, r2);
        let alpha = r1.find("# HELP alpha").unwrap();
        let zeta = r1.find("# HELP zeta_total").unwrap();
        assert!(alpha < zeta, "families must sort by name:\n{r1}");
        let a = r1.find("alpha{a=\"1\"}").unwrap();
        let b = r1.find("alpha{b=\"2\"}").unwrap();
        assert!(a < b, "series must sort by label set:\n{r1}");
    }

    #[test]
    fn label_values_escape() {
        let reg = MetricsRegistry::new();
        reg.gauge("esc", "Escapes.", &[("path", "a\\b\"c\nd")]);
        let r = reg.render();
        assert!(
            r.contains("esc{path=\"a\\\\b\\\"c\\nd\"} 0.0\n"),
            "bad escaping:\n{r}"
        );
    }

    #[test]
    fn help_lines_escape_newlines() {
        let reg = MetricsRegistry::new();
        reg.gauge("h", "line one\nline two \\ end", &[]);
        let r = reg.render();
        assert!(
            r.contains("# HELP h line one\\nline two \\\\ end\n"),
            "bad HELP escaping:\n{r}"
        );
    }

    #[test]
    fn non_finite_gauges_render_spec_spellings() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("weird", "Non-finite.", &[("k", "inf")]);
        g.set(f64::INFINITY);
        assert!(reg.render().contains("weird{k=\"inf\"} +Inf\n"));
        g.set(f64::NEG_INFINITY);
        assert!(reg.render().contains("weird{k=\"inf\"} -Inf\n"));
        g.set(f64::NAN);
        assert!(reg.render().contains("weird{k=\"inf\"} NaN\n"));
    }

    #[test]
    fn help_and_type_lines_present_for_every_family() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", "A counter.", &[]);
        reg.gauge("g", "A gauge.", &[]);
        reg.histogram("h", "A histogram.", &[], &[1.0]);
        let r = reg.render();
        for needle in [
            "# HELP c_total A counter.\n# TYPE c_total counter\n",
            "# HELP g A gauge.\n# TYPE g gauge\n",
            "# HELP h A histogram.\n# TYPE h histogram\n",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("same", "x", &[]);
        reg.gauge("same", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_name_panics() {
        MetricsRegistry::new().counter("7bad-name", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_is_reserved() {
        MetricsRegistry::new().histogram("h", "x", &[("le", "1")], &[1.0]);
    }

    #[test]
    fn latency_buckets_are_increasing() {
        let b = latency_buckets();
        assert!(b.len() >= 12);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn write_prometheus_matches_render() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("w_total", "Writer parity.", &[]);
        c.add(0, 3);
        let mut buf = Vec::new();
        reg.write_prometheus(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), reg.render());
    }
}
