//! Shared JSON formatting helpers for the sinks. No JSON crate is
//! vendored; `{:?}` on `f64` prints the shortest round-trippable
//! representation, and the escaping below covers the JSON string
//! grammar.

use crate::recorder::{Fields, Value};
use std::fmt::Write as _;

/// Append `s` as a JSON string literal (quotes included).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite JSON number; non-finite floats become `null` so the
/// output always stays well-formed.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Append one field value.
pub(crate) fn push_value(out: &mut String, v: &Value<'_>) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => push_f64(out, *x),
        Value::Str(s) => push_json_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Append `fields` as a JSON object (braces included).
pub(crate) fn push_fields(out: &mut String, fields: Fields<'_>) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_value(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        s.push(' ');
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null null");
    }

    #[test]
    fn fields_render_as_object() {
        let mut s = String::new();
        push_fields(
            &mut s,
            &[
                ("n", Value::U64(3)),
                ("x", Value::F64(1.5)),
                ("ok", Value::Bool(true)),
                ("who", Value::Str("site-0")),
                ("d", Value::I64(-2)),
            ],
        );
        assert_eq!(
            s,
            "{\"n\":3,\"x\":1.5,\"ok\":true,\"who\":\"site-0\",\"d\":-2}"
        );
    }
}
