//! Chrome `trace_event` exporter (the JSON-array flavour), loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//! - `span_begin`/`span_end` → async `ph:"b"` / `ph:"e"` pairs keyed by
//!   `(cat, id)` — group lifetimes (dispatch → completion) render as
//!   horizontal bars per node track (`tid` = flat node index).
//! - `event` → global instant events (`ph:"i"`, `s:"g"`) — learning
//!   cycles, faults, recoveries, decisions.
//! - `gauge` → counter tracks (`ph:"C"`) — per-site queue depth and
//!   power draw.
//!
//! Timestamps are microseconds: simulated seconds × 1e6. Events are
//! streamed to the writer in emission order, which the engine guarantees
//! is non-decreasing in simulated time.

use crate::fmt::{push_f64, push_fields, push_json_str};
use crate::jsonl::SinkWriter;
use crate::recorder::{Fields, Progress, Recorder, TraceLevel};
use crate::stats::{StatsCore, TelemetrySummary};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

const CATEGORY: &str = "sim";

struct ChromeOut {
    w: SinkWriter,
    wrote_any: bool,
    finished: bool,
    /// First write/flush error; later errors are dropped so the root
    /// cause is what gets reported.
    err: Option<io::Error>,
}

impl ChromeOut {
    fn note(&mut self, r: io::Result<()>) {
        if let Err(e) = r {
            self.err.get_or_insert(e);
        }
    }
}

pub struct ChromeTraceSink {
    level: TraceLevel,
    out: Mutex<ChromeOut>,
    stats: StatsCore,
}

impl ChromeTraceSink {
    /// Create (truncate) `path` and record events up to `level`.
    pub fn create<P: AsRef<Path>>(path: P, level: TraceLevel) -> io::Result<Self> {
        let file = File::create(path)?;
        Self::to_writer(Box::new(BufWriter::new(file)), level)
    }

    /// Build a sink over any writer (used by tests).
    pub fn to_writer(mut out: SinkWriter, level: TraceLevel) -> io::Result<Self> {
        out.write_all(b"[\n")?;
        Ok(ChromeTraceSink {
            level,
            out: Mutex::new(ChromeOut {
                w: out,
                wrote_any: false,
                finished: false,
                err: None,
            }),
            stats: StatsCore::new(),
        })
    }

    /// Poison-recovering lock: a panic on another thread mid-write must
    /// not cascade here — the closing `]` still lands on drop during the
    /// unwind, keeping the trace loadable.
    fn lock(&self) -> std::sync::MutexGuard<'_, ChromeOut> {
        self.out.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Append one record (no surrounding comma) to the streamed array.
    fn emit(&self, record: &str) {
        let mut out = self.lock();
        if out.finished {
            return;
        }
        if out.wrote_any {
            let r = out.w.write_all(b",\n");
            out.note(r);
        }
        out.wrote_any = true;
        let r = out.w.write_all(record.as_bytes());
        out.note(r);
    }

    /// Common record prefix: name, category, phase, timestamp, pid/tid.
    fn head(name: &str, ph: &str, t: f64, track: u32) -> String {
        let mut r = String::with_capacity(128);
        r.push_str("{\"name\":");
        push_json_str(&mut r, name);
        r.push_str(",\"cat\":\"");
        r.push_str(CATEGORY);
        r.push_str("\",\"ph\":\"");
        r.push_str(ph);
        r.push_str("\",\"ts\":");
        push_f64(&mut r, t * 1e6);
        r.push_str(",\"pid\":0,\"tid\":");
        r.push_str(&track.to_string());
        r
    }
}

impl Recorder for ChromeTraceSink {
    fn wants(&self, level: TraceLevel) -> bool {
        self.level.accepts(level)
    }

    fn event(&self, name: &str, t: f64, track: u32, fields: Fields<'_>) {
        let mut r = Self::head(name, "i", t, track);
        r.push_str(",\"s\":\"g\",\"args\":");
        push_fields(&mut r, fields);
        r.push('}');
        self.emit(&r);
    }

    fn span_begin(&self, name: &str, id: u64, t: f64, track: u32, fields: Fields<'_>) {
        let mut r = Self::head(name, "b", t, track);
        r.push_str(",\"id\":");
        r.push_str(&id.to_string());
        r.push_str(",\"args\":");
        push_fields(&mut r, fields);
        r.push('}');
        self.emit(&r);
    }

    fn span_end(&self, name: &str, id: u64, t: f64, track: u32) {
        let mut r = Self::head(name, "e", t, track);
        r.push_str(",\"id\":");
        r.push_str(&id.to_string());
        r.push_str(",\"args\":{}}");
        self.emit(&r);
    }

    fn gauge(&self, name: &str, t: f64, value: f64) {
        let mut r = Self::head(name, "C", t, 0);
        r.push_str(",\"args\":{\"value\":");
        push_f64(&mut r, value);
        r.push_str("}}");
        self.emit(&r);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.stats.counter_add(name, delta);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        self.stats.histogram(name, value);
    }

    fn progress(&self, _p: &Progress) {}

    fn summary(&self) -> Option<TelemetrySummary> {
        Some(self.stats.summary())
    }

    /// Close the JSON array; idempotent, also invoked on drop.
    fn finish(&self) {
        let mut out = self.lock();
        if out.finished {
            return;
        }
        out.finished = true;
        let r = out.w.write_all(b"\n]\n");
        out.note(r);
        let r = out.w.flush();
        out.note(r);
    }

    fn io_error(&self) -> Option<String> {
        self.lock().err.as_ref().map(|e| e.to_string())
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::Value;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn render(f: impl FnOnce(&ChromeTraceSink)) -> String {
        let buf = SharedBuf::default();
        let sink = ChromeTraceSink::to_writer(Box::new(buf.clone()), TraceLevel::All).unwrap();
        f(&sink);
        sink.finish();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn empty_trace_is_a_valid_array() {
        let text = render(|_| {});
        let v = json::parse(&text).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 0);
    }

    #[test]
    fn records_render_with_microsecond_ts() {
        let text = render(|s| {
            s.span_begin("group", 7, 0.5, 3, &[("size", Value::U64(4))]);
            s.event("fault", 0.75, 3, &[]);
            s.gauge("queue", 0.8, 2.0);
            s.span_end("group", 7, 1.0, 3);
        });
        let v = json::parse(&text).unwrap();
        let evs = v.as_array().unwrap();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("b"));
        assert_eq!(evs[0].get("ts").unwrap().as_f64(), Some(0.5e6));
        assert_eq!(evs[0].path(&["args", "size"]).unwrap().as_f64(), Some(4.0));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(evs[2].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(evs[3].get("ph").unwrap().as_str(), Some("e"));
        assert_eq!(evs[3].get("id").unwrap().as_f64(), Some(7.0));
    }

    /// The satellite contract: a trace abandoned mid-run (sink dropped
    /// without `finish()`) is still a loadable JSON array — the drop path
    /// writes the closing bracket.
    #[test]
    fn dropped_sink_leaves_a_loadable_trace() {
        let buf = SharedBuf::default();
        {
            let sink = ChromeTraceSink::to_writer(Box::new(buf.clone()), TraceLevel::All).unwrap();
            sink.event("fault", 0.5, 1, &[]);
            sink.span_begin("group", 9, 0.6, 2, &[]);
            // No finish(): the run "crashed" here.
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let v = json::parse(&text).expect("partial trace must still parse");
        assert_eq!(v.as_array().unwrap().len(), 2);
    }

    /// Same guarantee under a panic unwind: the sink's Drop runs during
    /// the unwind and closes the array.
    #[test]
    fn panic_unwind_still_closes_the_array() {
        let buf = SharedBuf::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let sink = ChromeTraceSink::to_writer(Box::new(buf.clone()), TraceLevel::All).unwrap();
            sink.event("before-crash", 0.25, 0, &[]);
            panic!("simulated mid-run crash");
        }));
        assert!(result.is_err());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let v = json::parse(&text).expect("trace after unwind must still parse");
        let evs = v.as_array().unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("before-crash"));
    }

    #[test]
    fn write_failure_is_latched_not_panicked() {
        let sink = ChromeTraceSink::to_writer(
            Box::new(crate::jsonl::tests::FailingWriter),
            TraceLevel::All,
        );
        // Even the opening bracket fails to land: creation reports it.
        assert!(sink.is_err());
        let buf = SharedBuf::default();
        let sink = ChromeTraceSink::to_writer(Box::new(buf.clone()), TraceLevel::All).unwrap();
        assert!(sink.io_error().is_none());
        sink.finish();
        assert!(sink.io_error().is_none());
    }

    #[test]
    fn finish_is_idempotent_and_blocks_late_events() {
        let buf = SharedBuf::default();
        let sink = ChromeTraceSink::to_writer(Box::new(buf.clone()), TraceLevel::All).unwrap();
        sink.event("a", 0.0, 0, &[]);
        sink.finish();
        sink.finish();
        sink.event("late", 1.0, 0, &[]);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 1);
    }
}
