//! Runtime telemetry for the simulation stack.
//!
//! The design goal is *zero cost when disabled*: every instrumented call
//! site in the engine/scheduler hot paths is guarded by a boolean cached
//! at construction time (`Recorder::wants(level)`), so a run without a
//! sink pays one predictable branch per site — no virtual dispatch, no
//! allocation, no formatting. The `golden_determinism` suite and the
//! `BENCH_throughput.json` baseline pin this down.
//!
//! Layers:
//!
//! - [`Recorder`] — the trait the engines talk to. Span begin/end,
//!   instant events, gauges, monotonic counters and histogram samples,
//!   plus a periodic [`Progress`] snapshot for the stderr ticker.
//! - [`NullRecorder`] / [`NULL`] — the no-op implementation; `wants`
//!   returns `false` for every level so guarded sites never fire.
//! - [`JsonlSink`] — one self-contained JSON object per line; each line
//!   is formatted into a private buffer and written with a single
//!   `write_all` under a mutex, so concurrent replicated runs never
//!   interleave partial lines.
//! - [`ChromeTraceSink`] — Chrome `trace_event` JSON array loadable in
//!   Perfetto / `chrome://tracing`; dispatch spans become async `b`/`e`
//!   pairs, markers become instant events, gauges become counter tracks.
//! - [`StderrProgress`] — wraps any recorder (or nothing) and renders
//!   the [`Progress`] snapshots as a throttled one-line stderr ticker.
//! - [`TelemetrySummary`] — end-of-run counter totals and histogram
//!   quantiles, attached to `RunResult` when tracing is on.
//! - [`json`] — a minimal recursive-descent JSON parser (no JSON crate
//!   is vendored) used by the exporter tests and the throughput
//!   regression guard.
//! - [`metrics`] — the live-monitoring registry: labeled atomic
//!   counters/gauges/histograms with Prometheus text-format exposition,
//!   served over HTTP by [`MetricsServer`].
//! - [`TimeSeriesRing`] / [`TimeSeriesLog`] — sim-time snapshots of
//!   per-site power/energy/queue state on a configurable cadence.
//! - [`PhaseProfiler`] — coarse phase timers for the `--profile`
//!   self-profiler.

mod chrome;
mod fmt;
pub mod ingest;
pub mod json;
mod jsonl;
pub mod metrics;
mod profile;
mod progress;
mod promhttp;
mod recorder;
mod stats;
mod timeseries;

pub use chrome::ChromeTraceSink;
pub use ingest::IngestMetrics;
pub use jsonl::JsonlSink;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use profile::{Phase, PhaseProfiler, PhaseStat, ProfileReport, PHASES};
pub use progress::StderrProgress;
pub use promhttp::MetricsServer;
pub use recorder::{Fields, NullRecorder, Progress, Recorder, TraceLevel, Value, NULL};
pub use stats::{quantile, CounterTotal, HistogramSummary, StatsCore, TelemetrySummary};
pub use timeseries::{SitePoint, TimePoint, TimeSeriesLog, TimeSeriesRing};
