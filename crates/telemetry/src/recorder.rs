//! The `Recorder` trait, trace levels, field values and the no-op
//! recorder.

use crate::stats::TelemetrySummary;

/// How much detail a sink wants. Levels are cumulative: a sink
/// configured at a level accepts that level and everything coarser.
///
/// - `Cycles` — coarsest: learning-cycle summaries plus fault/recovery
///   markers.
/// - `Decisions` — the default: adds per-decision events, dispatch/group
///   spans and the latency/queue-wait histograms.
/// - `All` — adds the per-engine-event firehose from `simcore`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    Cycles,
    Decisions,
    All,
}

impl TraceLevel {
    /// Parse a CLI-style level name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cycles" => Some(TraceLevel::Cycles),
            "decisions" => Some(TraceLevel::Decisions),
            "all" => Some(TraceLevel::All),
            _ => None,
        }
    }

    /// The CLI-style name, inverse of [`TraceLevel::parse`].
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Cycles => "cycles",
            TraceLevel::Decisions => "decisions",
            TraceLevel::All => "all",
        }
    }

    /// Whether a sink configured at `self` accepts events tagged `site`.
    /// Coarser-or-equal site levels are accepted.
    pub fn accepts(self, site: TraceLevel) -> bool {
        site <= self
    }
}

/// A typed field value; sinks render these without allocating
/// intermediate strings beyond the per-record buffer.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'a str),
    Bool(bool),
}

/// A borrowed field list, built on the caller's stack.
pub type Fields<'a> = &'a [(&'a str, Value<'a>)];

/// A progress snapshot emitted from the engine on tick boundaries when
/// the recorder asks for it (`wants_progress`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Progress {
    /// Current simulated time (seconds).
    pub sim_time: f64,
    /// Wall-clock seconds since the run started.
    pub wall_s: f64,
    /// Tasks resolved so far (any outcome).
    pub done: usize,
    /// Total tasks in the run.
    pub total: usize,
    /// Tasks that met their deadline so far.
    pub met: usize,
    /// Energy consumed so far (joules).
    pub energy: f64,
    /// Engine events processed so far.
    pub events: u64,
}

/// The instrumentation interface the engines and schedulers talk to.
///
/// All methods take `&self`; sinks use interior mutability so one
/// recorder can be shared across replicated runner threads. Call sites
/// MUST guard emission behind a cached `wants(...)` boolean — the
/// methods themselves are not free.
pub trait Recorder: Send + Sync {
    /// Does this recorder want events tagged with `level`? Called once
    /// per run at instrumentation setup, never in the hot loop.
    fn wants(&self, level: TraceLevel) -> bool;

    /// Does this recorder want periodic [`Progress`] snapshots?
    fn wants_progress(&self) -> bool {
        false
    }

    /// An instant event at simulated time `t` on logical track `track`.
    fn event(&self, name: &str, t: f64, track: u32, fields: Fields<'_>);

    /// Begin an async span; `id` pairs it with the matching `span_end`.
    fn span_begin(&self, name: &str, id: u64, t: f64, track: u32, fields: Fields<'_>);

    /// End the async span opened with the same `name`/`id`.
    fn span_end(&self, name: &str, id: u64, t: f64, track: u32);

    /// A sampled scalar series (rendered as a counter track in Chrome
    /// traces).
    fn gauge(&self, name: &str, t: f64, value: f64);

    /// Add to a monotonic counter; totals appear in the summary.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Record one histogram sample; quantiles appear in the summary.
    fn histogram(&self, name: &'static str, value: f64);

    /// Periodic progress snapshot; only called when `wants_progress`.
    fn progress(&self, _p: &Progress) {}

    /// Counter totals and histogram quantiles accumulated so far.
    fn summary(&self) -> Option<TelemetrySummary> {
        None
    }

    /// Flush and finalise the sink (e.g. close the Chrome JSON array).
    /// Idempotent; recorders must also finalise on drop.
    fn finish(&self) {}

    /// The first write/flush error the sink swallowed, if any.
    ///
    /// Sinks never abort a run on I/O failure (a full disk must not cost
    /// the in-memory results); instead they latch the first error here so
    /// the caller can surface it after `finish()`.
    fn io_error(&self) -> Option<String> {
        None
    }
}

/// The no-op recorder: `wants` is `false` for every level, so guarded
/// call sites never reach the other methods.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

/// A shareable static no-op recorder for untraced runs.
pub static NULL: NullRecorder = NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn wants(&self, _level: TraceLevel) -> bool {
        false
    }

    #[inline(always)]
    fn event(&self, _name: &str, _t: f64, _track: u32, _fields: Fields<'_>) {}

    #[inline(always)]
    fn span_begin(&self, _name: &str, _id: u64, _t: f64, _track: u32, _fields: Fields<'_>) {}

    #[inline(always)]
    fn span_end(&self, _name: &str, _id: u64, _t: f64, _track: u32) {}

    #[inline(always)]
    fn gauge(&self, _name: &str, _t: f64, _value: f64) {}

    #[inline(always)]
    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn histogram(&self, _name: &'static str, _value: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        assert!(TraceLevel::All.accepts(TraceLevel::Cycles));
        assert!(TraceLevel::All.accepts(TraceLevel::Decisions));
        assert!(TraceLevel::All.accepts(TraceLevel::All));
        assert!(TraceLevel::Decisions.accepts(TraceLevel::Cycles));
        assert!(TraceLevel::Decisions.accepts(TraceLevel::Decisions));
        assert!(!TraceLevel::Decisions.accepts(TraceLevel::All));
        assert!(TraceLevel::Cycles.accepts(TraceLevel::Cycles));
        assert!(!TraceLevel::Cycles.accepts(TraceLevel::Decisions));
    }

    #[test]
    fn level_names_round_trip() {
        for lvl in [TraceLevel::Cycles, TraceLevel::Decisions, TraceLevel::All] {
            assert_eq!(TraceLevel::parse(lvl.name()), Some(lvl));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn null_recorder_wants_nothing() {
        assert!(!NULL.wants(TraceLevel::Cycles));
        assert!(!NULL.wants(TraceLevel::All));
        assert!(!NULL.wants_progress());
        assert!(NULL.summary().is_none());
    }
}
