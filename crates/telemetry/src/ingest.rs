//! Counter family for the serving front door: connections, request
//! lines, parse failures, submissions/tasks admitted, rejections, and
//! notification lines pushed back — the `arls_ingest_*` metrics the
//! `arls serve` daemon registers next to the platform's `arls_*` family.

use crate::metrics::{Counter, MetricsRegistry};

/// Handles into the `arls_ingest_*` counters.
///
/// All counters live in the daemon's shared [`MetricsRegistry`], so a
/// `/metrics` scrape sees ingest and simulation state in one payload.
/// The daemon's accept loop is single-threaded, so shard 0 is used
/// throughout.
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// Client connections accepted.
    pub connections: Counter,
    /// Request lines read (including ones that later fail to parse).
    pub lines: Counter,
    /// Request lines that failed to parse or validate.
    pub parse_errors: Counter,
    /// Submissions admitted (acked).
    pub submissions: Counter,
    /// Tasks admitted across all acked submissions.
    pub tasks: Counter,
    /// Submissions rejected (bad request, unknown site, shed load).
    pub rejections: Counter,
    /// Notification lines streamed back to clients.
    pub notifications: Counter,
}

impl IngestMetrics {
    /// Registers (or re-resolves) the family in `reg`.
    pub fn register(reg: &MetricsRegistry) -> IngestMetrics {
        IngestMetrics {
            connections: reg.counter(
                "arls_ingest_connections_total",
                "Client connections accepted by the serving front door.",
                &[],
            ),
            lines: reg.counter(
                "arls_ingest_lines_total",
                "Request lines read from clients.",
                &[],
            ),
            parse_errors: reg.counter(
                "arls_ingest_parse_errors_total",
                "Request lines that failed to parse or validate.",
                &[],
            ),
            submissions: reg.counter(
                "arls_ingest_submissions_total",
                "Submissions admitted into the live scheduler.",
                &[],
            ),
            tasks: reg.counter(
                "arls_ingest_tasks_total",
                "Tasks admitted across all acked submissions.",
                &[],
            ),
            rejections: reg.counter(
                "arls_ingest_rejections_total",
                "Submissions rejected by the serving front door.",
                &[],
            ),
            notifications: reg.counter(
                "arls_ingest_notifications_total",
                "Notification lines streamed back to clients.",
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_and_renders_the_family() {
        let reg = MetricsRegistry::new();
        let m = IngestMetrics::register(&reg);
        m.connections.inc(0);
        m.lines.add(0, 3);
        m.submissions.add(0, 2);
        m.tasks.add(0, 7);
        m.rejections.inc(0);
        let out = reg.render();
        assert!(out.contains("arls_ingest_connections_total 1\n"), "{out}");
        assert!(out.contains("arls_ingest_lines_total 3\n"), "{out}");
        assert!(out.contains("arls_ingest_tasks_total 7\n"), "{out}");
        assert!(out.contains("arls_ingest_rejections_total 1\n"), "{out}");
        // Re-registration resolves to the same cells.
        let again = IngestMetrics::register(&reg);
        again.submissions.inc(0);
        assert_eq!(m.submissions.total(), 3);
    }
}
