//! A minimal recursive-descent JSON parser.
//!
//! The workspace vendors no JSON crate, but the telemetry sinks *emit*
//! JSON and two consumers need to read it back: the exporter tests
//! (validity, monotonic `ts`, matched span pairs) and the `throughput`
//! bin's regression guard against the committed `BENCH_throughput.json`.
//! This covers the full JSON grammar minus `\u` surrogate pairs being
//! combined (escapes decode to the code point; lone surrogates are
//! rejected).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// `obj["key"]` lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Dotted-path lookup, e.g. `root.path(&["aggregate", "tasks_per_s"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }
}

/// Parse error with byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("lone surrogate in \\u escape"))?;
                            out.push(c);
                            self.pos += 3; // the common +1 below covers the 4th
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not byte by byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -1.5e2 ").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "xA"}, true], "c": {}}"#).unwrap();
        assert_eq!(v.path(&["a"]).unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.path(&["a"]).unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("xA")
        );
        assert_eq!(v.get("c").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn round_trips_f64_debug_format() {
        let x = 312055.59166346956_f64;
        let parsed = parse(&format!("{x:?}")).unwrap();
        assert_eq!(parsed.as_f64(), Some(x));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parses_unicode_strings() {
        assert_eq!(parse("\"héllo ⚡\"").unwrap().as_str(), Some("héllo ⚡"));
    }
}
