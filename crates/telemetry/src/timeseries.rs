//! Sim-time series sampling: fixed-capacity ring of per-tick snapshots
//! (per-site power/queue/availability, cumulative energy, task counts,
//! exploration rate, decision-latency quantiles), emitted as a
//! `timeseries.jsonl` sink and folded into `RunResult`.

use crate::fmt;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io;

/// Per-site state at one sample instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SitePoint {
    /// Instantaneous power draw of the site (watts).
    pub power_w: f64,
    /// Task groups queued across the site's nodes.
    pub queue_depth: u64,
    /// Fraction of the site's processors not failed, in [0, 1].
    pub availability: f64,
}

/// One snapshot of the whole platform at sim time `t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Simulated time of the sample (seconds).
    pub t: f64,
    /// Cumulative energy consumed by the platform up to `t` (joules).
    pub energy_j: f64,
    /// Tasks resolved so far (completed + failed).
    pub done: u64,
    /// Tasks that met their deadline so far.
    pub met: u64,
    /// Tasks permanently failed so far.
    pub failed: u64,
    /// Scheduler exploration rate (epsilon), when the policy exposes one.
    #[serde(default)]
    pub epsilon: Option<f64>,
    /// Decision-latency quantile estimates (microseconds); zero until the
    /// first decision lands.
    pub decision_p50_us: f64,
    pub decision_p95_us: f64,
    pub decision_p99_us: f64,
    /// Per-site breakdown, indexed by site id.
    pub sites: Vec<SitePoint>,
}

/// The completed series: what the ring held when the run finished.
///
/// Diagnostics only — excluded from replay comparison, like the
/// telemetry summary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesLog {
    /// Requested sampling cadence (sim seconds). Samples land on the
    /// first tick boundary at or after each cadence multiple.
    pub sample_every: f64,
    /// Oldest points dropped because the ring was full.
    pub dropped: u64,
    pub points: Vec<TimePoint>,
}

impl TimeSeriesLog {
    /// Writes the series as JSON Lines: one self-contained object per
    /// point, prefixed by a `meta` line carrying cadence and drop count.
    pub fn write_jsonl(&self, out: &mut impl io::Write) -> io::Result<()> {
        let mut line = String::with_capacity(256);
        line.push_str("{\"meta\":{\"sample_every\":");
        fmt::push_f64(&mut line, self.sample_every);
        line.push_str(",\"dropped\":");
        line.push_str(&self.dropped.to_string());
        line.push_str(",\"points\":");
        line.push_str(&self.points.len().to_string());
        line.push_str("}}\n");
        out.write_all(line.as_bytes())?;
        for p in &self.points {
            line.clear();
            render_point(&mut line, p);
            line.push('\n');
            out.write_all(line.as_bytes())?;
        }
        Ok(())
    }
}

fn render_point(out: &mut String, p: &TimePoint) {
    use std::fmt::Write as _;
    out.push_str("{\"t\":");
    fmt::push_f64(out, p.t);
    out.push_str(",\"energy_j\":");
    fmt::push_f64(out, p.energy_j);
    let _ = write!(
        out,
        ",\"done\":{},\"met\":{},\"failed\":{}",
        p.done, p.met, p.failed
    );
    out.push_str(",\"epsilon\":");
    match p.epsilon {
        Some(e) => fmt::push_f64(out, e),
        None => out.push_str("null"),
    }
    out.push_str(",\"decision_p50_us\":");
    fmt::push_f64(out, p.decision_p50_us);
    out.push_str(",\"decision_p95_us\":");
    fmt::push_f64(out, p.decision_p95_us);
    out.push_str(",\"decision_p99_us\":");
    fmt::push_f64(out, p.decision_p99_us);
    out.push_str(",\"sites\":[");
    for (i, s) in p.sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"power_w\":");
        fmt::push_f64(out, s.power_w);
        let _ = write!(out, ",\"queue_depth\":{}", s.queue_depth);
        out.push_str(",\"availability\":");
        fmt::push_f64(out, s.availability);
        out.push('}');
    }
    out.push_str("]}");
}

/// Fixed-capacity drop-oldest ring accumulating [`TimePoint`]s during a
/// run. Capacity bounds memory on arbitrarily long service runs; the
/// drop counter keeps truncation visible.
#[derive(Debug)]
pub struct TimeSeriesRing {
    sample_every: f64,
    capacity: usize,
    dropped: u64,
    points: VecDeque<TimePoint>,
}

impl TimeSeriesRing {
    /// `sample_every` is the requested cadence in sim seconds (clamped
    /// positive); `capacity` the maximum retained points (clamped >= 1).
    pub fn new(sample_every: f64, capacity: usize) -> Self {
        TimeSeriesRing {
            sample_every: if sample_every > 0.0 {
                sample_every
            } else {
                1.0
            },
            capacity: capacity.max(1),
            dropped: 0,
            points: VecDeque::new(),
        }
    }

    pub fn sample_every(&self) -> f64 {
        self.sample_every
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether a sample is due at sim time `now`: true once per cadence
    /// interval, at the first call at-or-after the interval boundary.
    pub fn due(&self, now: f64) -> bool {
        match self.points.back() {
            None => true,
            Some(last) => now - last.t >= self.sample_every,
        }
    }

    pub fn push(&mut self, p: TimePoint) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back(p);
    }

    /// Final sample at run end: records `p` unless the last retained
    /// point already sits at the same instant.
    pub fn push_final(&mut self, p: TimePoint) {
        if self.points.back().is_some_and(|last| last.t == p.t) {
            return;
        }
        self.push(p);
    }

    pub fn into_log(self) -> TimeSeriesLog {
        TimeSeriesLog {
            sample_every: self.sample_every,
            dropped: self.dropped,
            points: self.points.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(t: f64) -> TimePoint {
        TimePoint {
            t,
            energy_j: 10.0 * t,
            done: t as u64,
            met: 0,
            failed: 0,
            epsilon: Some(0.2),
            decision_p50_us: 1.0,
            decision_p95_us: 2.0,
            decision_p99_us: 3.0,
            sites: vec![SitePoint {
                power_w: 100.0,
                queue_depth: 2,
                availability: 1.0,
            }],
        }
    }

    #[test]
    fn cadence_gates_samples() {
        let mut ring = TimeSeriesRing::new(10.0, 100);
        assert!(ring.due(0.0));
        ring.push(point(0.0));
        assert!(!ring.due(5.0));
        assert!(ring.due(10.0));
        ring.push(point(10.0));
        assert!(!ring.due(19.9));
        assert!(ring.due(25.0));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = TimeSeriesRing::new(1.0, 3);
        for t in 0..5 {
            ring.push(point(t as f64));
        }
        let log = ring.into_log();
        assert_eq!(log.dropped, 2);
        let ts: Vec<f64> = log.points.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn final_sample_dedupes_same_instant() {
        let mut ring = TimeSeriesRing::new(1.0, 10);
        ring.push(point(4.0));
        ring.push_final(point(4.0));
        assert_eq!(ring.len(), 1);
        ring.push_final(point(7.5));
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let mut ring = TimeSeriesRing::new(5.0, 10);
        ring.push(point(0.0));
        ring.push(point(5.0));
        let log = ring.into_log();
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let meta = crate::json::parse(lines[0]).expect("meta parses");
        assert_eq!(
            meta.path(&["meta", "points"]).and_then(|v| v.as_f64()),
            Some(2.0)
        );
        let p1 = crate::json::parse(lines[2]).expect("point parses");
        assert_eq!(p1.get("t").and_then(|v| v.as_f64()), Some(5.0));
        assert_eq!(
            p1.get("sites").and_then(|v| v.as_array()).map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn non_finite_fields_stay_valid_json() {
        let mut p = point(1.0);
        p.energy_j = f64::NAN;
        let log = TimeSeriesLog {
            sample_every: 1.0,
            dropped: 0,
            points: vec![p],
        };
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            crate::json::parse(line).expect("every line parses");
        }
        assert!(text.contains("\"energy_j\":null"));
    }
}
