//! Self-profiler: coarse phase timers around the simulation hot path.
//!
//! Six fixed phases cover where the wall time goes — event-queue pop,
//! event handling, observation building, batched candidate scoring,
//! training steps and checkpoint writes. Recording is two relaxed atomic
//! adds per sample; call sites gate the `Instant::now()` pair behind an
//! `Option<Arc<PhaseProfiler>>` so unprofiled runs never read the clock.
//!
//! The report renders as an aligned stderr table and as a hand-rolled
//! `PROFILE_*.json` artifact (no JSON crate is vendored).

use crate::fmt;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The profiled phases, in display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Popping the next event off the engine queue.
    EventPop,
    /// Handling one engine event (everything inside `on_event`).
    EventHandle,
    /// Building per-site observations for the RL agent.
    ObsBuild,
    /// Batched candidate scoring (`score_into` over the value network).
    Score,
    /// One training step of the value network.
    Train,
    /// Serializing + atomically writing one checkpoint.
    CheckpointWrite,
}

/// All phases, in display order.
pub const PHASES: [Phase; 6] = [
    Phase::EventPop,
    Phase::EventHandle,
    Phase::ObsBuild,
    Phase::Score,
    Phase::Train,
    Phase::CheckpointWrite,
];

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::EventPop => "event_pop",
            Phase::EventHandle => "event_handle",
            Phase::ObsBuild => "obs_build",
            Phase::Score => "score",
            Phase::Train => "train",
            Phase::CheckpointWrite => "checkpoint_write",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::EventPop => 0,
            Phase::EventHandle => 1,
            Phase::ObsBuild => 2,
            Phase::Score => 3,
            Phase::Train => 4,
            Phase::CheckpointWrite => 5,
        }
    }
}

#[derive(Debug, Default)]
struct Slot {
    ns: AtomicU64,
    calls: AtomicU64,
}

/// Lock-free phase-time accumulator shared across threads.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    slots: [Slot; 6],
}

impl PhaseProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample of `ns` nanoseconds in `phase`.
    #[inline]
    pub fn record(&self, phase: Phase, ns: u64) {
        let slot = &self.slots[phase.index()];
        slot.ns.fetch_add(ns, Ordering::Relaxed);
        slot.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// [`PhaseProfiler::record`] from a measured `Duration`.
    #[inline]
    pub fn record_duration(&self, phase: Phase, d: Duration) {
        self.record(phase, d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Snapshot everything recorded so far.
    pub fn report(&self) -> ProfileReport {
        let phases = PHASES
            .iter()
            .map(|&p| {
                let slot = &self.slots[p.index()];
                let calls = slot.calls.load(Ordering::Relaxed);
                let ns = slot.ns.load(Ordering::Relaxed);
                PhaseStat {
                    phase: p.name().to_string(),
                    calls,
                    total_s: ns as f64 / 1e9,
                    mean_us: if calls > 0 {
                        ns as f64 / calls as f64 / 1e3
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        ProfileReport { phases }
    }
}

/// Aggregated timings for one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    pub phase: String,
    pub calls: u64,
    pub total_s: f64,
    pub mean_us: f64,
}

/// The profiler's end-of-run output.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    pub phases: Vec<PhaseStat>,
}

impl ProfileReport {
    /// Aligned text table (phases with zero samples are elided; shares of
    /// total are relative to the instrumented time, not wall time).
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let shown: Vec<&PhaseStat> = self.phases.iter().filter(|p| p.calls > 0).collect();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>12} {:>12} {:>7}",
            "phase", "calls", "total (s)", "mean (us)", "share"
        );
        if shown.is_empty() {
            let _ = writeln!(out, "  (no samples recorded)");
            return out;
        }
        let total: f64 = shown.iter().map(|p| p.total_s).sum();
        for p in shown {
            let share = if total > 0.0 {
                100.0 * p.total_s / total
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<18} {:>12} {:>12.4} {:>12.3} {:>6.1}%",
                p.phase, p.calls, p.total_s, p.mean_us, share
            );
        }
        out
    }

    /// The `PROFILE_*.json` payload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str("    {\"phase\":");
            fmt::push_json_str(&mut out, &p.phase);
            out.push_str(&format!(",\"calls\":{},\"total_s\":", p.calls));
            fmt::push_f64(&mut out, p.total_s);
            out.push_str(",\"mean_us\":");
            fmt::push_f64(&mut out, p.mean_us);
            out.push('}');
            if i + 1 < self.phases.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_phase() {
        let p = PhaseProfiler::new();
        p.record(Phase::Score, 1_000);
        p.record(Phase::Score, 3_000);
        p.record_duration(Phase::Train, Duration::from_micros(5));
        let r = p.report();
        let score = r.phases.iter().find(|s| s.phase == "score").unwrap();
        assert_eq!(score.calls, 2);
        assert!((score.mean_us - 2.0).abs() < 1e-9);
        let train = r.phases.iter().find(|s| s.phase == "train").unwrap();
        assert_eq!(train.calls, 1);
        assert!((train.total_s - 5e-6).abs() < 1e-12);
        let pop = r.phases.iter().find(|s| s.phase == "event_pop").unwrap();
        assert_eq!(pop.calls, 0);
    }

    #[test]
    fn table_elides_empty_phases_and_shares_sum() {
        let p = PhaseProfiler::new();
        p.record(Phase::EventHandle, 3_000_000);
        p.record(Phase::Score, 1_000_000);
        let table = p.report().render_table();
        assert!(table.contains("event_handle"));
        assert!(table.contains("score"));
        assert!(!table.contains("checkpoint_write"));
        assert!(table.contains("75.0%"), "{table}");
        assert!(table.contains("25.0%"), "{table}");
    }

    #[test]
    fn empty_profiler_renders_placeholder() {
        let table = PhaseProfiler::new().report().render_table();
        assert!(table.contains("no samples recorded"));
    }

    #[test]
    fn json_parses_and_lists_all_phases() {
        let p = PhaseProfiler::new();
        p.record(Phase::CheckpointWrite, 10_000);
        let json = p.report().to_json();
        let v = crate::json::parse(&json).expect("profile JSON parses");
        let phases = v.get("phases").and_then(|x| x.as_array()).unwrap();
        assert_eq!(phases.len(), PHASES.len());
        let names: Vec<&str> = phases
            .iter()
            .filter_map(|p| p.get("phase").and_then(|n| n.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                "event_pop",
                "event_handle",
                "obs_build",
                "score",
                "train",
                "checkpoint_write"
            ]
        );
    }
}
