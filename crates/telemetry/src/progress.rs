//! Live stderr progress ticker.
//!
//! `StderrProgress` wraps an inner recorder (possibly the no-op one) and
//! adds `wants_progress() == true`: the platform engine then emits a
//! [`Progress`] snapshot on every tick event, and this wrapper throttles
//! rendering to at most one stderr line per interval of *wall* time so
//! fast runs don't drown the terminal.

use crate::recorder::{Fields, Progress, Recorder, TraceLevel};
use crate::stats::TelemetrySummary;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub struct StderrProgress {
    inner: Arc<dyn Recorder>,
    every: Duration,
    last: Mutex<Option<Instant>>,
    /// Most recent snapshot, rendered unthrottled — once — by
    /// [`Recorder::finish`] so the ticker always ends on a complete
    /// `done` line and whatever follows on the terminal (the profiler
    /// table, piped logs) never interleaves with a stale ticker line.
    final_snapshot: Mutex<Option<Progress>>,
}

impl StderrProgress {
    /// Wrap `inner`, printing at most one line per `every` of wall time.
    pub fn wrap(inner: Arc<dyn Recorder>, every: Duration) -> Self {
        StderrProgress {
            inner,
            every,
            last: Mutex::new(None),
            final_snapshot: Mutex::new(None),
        }
    }

    /// Progress-only recorder: no trace sink, just the stderr ticker.
    pub fn bare() -> Self {
        Self::wrap(
            Arc::new(crate::recorder::NullRecorder),
            Duration::from_millis(500),
        )
    }

    fn should_print(&self) -> bool {
        // Poison recovery: the throttle state is just a timestamp, safe
        // to reuse after a panic elsewhere.
        let mut last = self.last.lock().unwrap_or_else(|p| p.into_inner());
        let now = Instant::now();
        match *last {
            Some(prev) if now.duration_since(prev) < self.every => false,
            _ => {
                *last = Some(now);
                true
            }
        }
    }

    fn render(p: &Progress) {
        eprintln!("{}", Self::render_line(p));
    }

    fn render_line(p: &Progress) -> String {
        let pct = if p.total > 0 {
            100.0 * p.done as f64 / p.total as f64
        } else {
            0.0
        };
        let success = if p.done > 0 {
            100.0 * p.met as f64 / p.done as f64
        } else {
            0.0
        };
        let eps = if p.wall_s > 0.0 {
            p.events as f64 / p.wall_s
        } else {
            0.0
        };
        format!(
            "[t={:>8.2}s] tasks {}/{} ({:.0}%)  met {:.1}%  energy {:.0} J  {:.0} ev/s",
            p.sim_time, p.done, p.total, pct, success, p.energy, eps
        )
    }
}

impl Recorder for StderrProgress {
    fn wants(&self, level: TraceLevel) -> bool {
        self.inner.wants(level)
    }

    fn wants_progress(&self) -> bool {
        true
    }

    fn event(&self, name: &str, t: f64, track: u32, fields: Fields<'_>) {
        self.inner.event(name, t, track, fields);
    }

    fn span_begin(&self, name: &str, id: u64, t: f64, track: u32, fields: Fields<'_>) {
        self.inner.span_begin(name, id, t, track, fields);
    }

    fn span_end(&self, name: &str, id: u64, t: f64, track: u32) {
        self.inner.span_end(name, id, t, track);
    }

    fn gauge(&self, name: &str, t: f64, value: f64) {
        self.inner.gauge(name, t, value);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.inner.counter_add(name, delta);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        self.inner.histogram(name, value);
    }

    fn progress(&self, p: &Progress) {
        {
            let mut snap = self
                .final_snapshot
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *snap = Some(*p);
        }
        if self.should_print() {
            Self::render(p);
        }
    }

    fn summary(&self) -> Option<TelemetrySummary> {
        self.inner.summary()
    }

    fn finish(&self) {
        // `take()` makes the final line idempotent across repeated
        // finish() calls (the CLI finishes explicitly; drops may too).
        let snap = self
            .final_snapshot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(p) = snap {
            eprintln!("{}  done", Self::render_line(&p));
        }
        self.inner.finish();
    }

    fn io_error(&self) -> Option<String> {
        self.inner.io_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_wrapper_wants_progress_but_no_levels() {
        let p = StderrProgress::bare();
        assert!(p.wants_progress());
        assert!(!p.wants(TraceLevel::Cycles));
        assert!(p.summary().is_none());
    }

    #[test]
    fn finish_consumes_the_final_snapshot_once() {
        let p = StderrProgress::wrap(
            Arc::new(crate::recorder::NullRecorder),
            Duration::from_secs(3600),
        );
        let snap = Progress {
            sim_time: 42.0,
            done: 5,
            total: 10,
            ..Progress::default()
        };
        p.progress(&snap);
        assert!(p.final_snapshot.lock().unwrap().is_some());
        p.finish();
        // The latch is consumed: a second finish has nothing to print.
        assert!(p.final_snapshot.lock().unwrap().is_none());
        p.finish();
    }

    #[test]
    fn render_line_is_one_line() {
        let line = StderrProgress::render_line(&Progress {
            sim_time: 1.5,
            wall_s: 0.5,
            done: 2,
            total: 4,
            met: 1,
            energy: 123.0,
            events: 100,
        });
        assert!(!line.contains('\n'));
        assert!(line.contains("tasks 2/4 (50%)"), "{line}");
    }

    #[test]
    fn throttle_admits_first_and_blocks_burst() {
        let p = StderrProgress::wrap(
            Arc::new(crate::recorder::NullRecorder),
            Duration::from_secs(3600),
        );
        assert!(p.should_print());
        assert!(!p.should_print());
        assert!(!p.should_print());
    }
}
