//! Minimal blocking `/metrics` HTTP listener.
//!
//! No HTTP crate is vendored; the endpoint speaks just enough HTTP/1.1
//! for `curl` and a Prometheus scraper: one request per connection,
//! `GET`/`HEAD /metrics` answered from [`MetricsRegistry::render`],
//! everything else 404/405, `Connection: close`. The accept loop runs on
//! one background thread with a non-blocking listener polled every few
//! tens of milliseconds so [`MetricsServer::shutdown`] (and `Drop`) can
//! stop it promptly; the simulation thread never blocks on a scrape.

use crate::metrics::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A live `/metrics` endpoint serving one [`MetricsRegistry`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9898"`; port 0 picks a free one)
    /// and starts serving `registry` until shutdown/drop.
    pub fn serve(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("arls-metrics".to_string())
            .spawn(move || accept_loop(listener, registry, stop_flag))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<MetricsRegistry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrapes are cheap and rare; serving inline keeps the
                // server a single predictable thread.
                let _ = serve_one(stream, &registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Reads one request head and answers it. Any I/O error just drops the
/// connection — a broken scraper must never disturb the run.
fn serve_one(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let head = read_head(&mut stream)?;
    let mut parts = head
        .lines()
        .next()
        .unwrap_or_default()
        .split_ascii_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let path = path.split('?').next().unwrap_or_default();
    let (status, body) = match (method, path) {
        ("GET" | "HEAD", "/metrics") => ("200 OK", registry.render()),
        ("GET" | "HEAD", _) => ("404 Not Found", "not found; try /metrics\n".to_string()),
        _ => (
            "405 Method Not Allowed",
            "only GET is supported\n".to_string(),
        ),
    };
    let content_type = if status.starts_with("200") {
        // The exposition-format content type Prometheus expects.
        "text/plain; version=0.0.4; charset=utf-8"
    } else {
        "text/plain; charset=utf-8"
    };
    let mut response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if method != "HEAD" {
        response.push_str(&body);
    }
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads until the blank line ending the request head (8 KiB cap — a
/// scrape request head is a few hundred bytes).
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 8192 {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn request(addr: SocketAddr, req: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(req.as_bytes()).unwrap();
        let mut reader = BufReader::new(s);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        let mut line = String::new();
        // Skip remaining headers.
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        reader.read_to_string(&mut body).unwrap();
        (status.trim_end().to_string(), body)
    }

    #[test]
    fn serves_metrics_and_rejects_other_paths() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = registry.counter("arls_up_total", "Liveness.", &[]);
        c.add(0, 5);
        let mut server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind");
        let addr = server.local_addr();

        let (status, body) = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("arls_up_total 5\n"), "{body}");

        // A scrape sees live values, not a snapshot from bind time.
        c.add(0, 2);
        let (_, body) = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(body.contains("arls_up_total 7\n"), "{body}");

        let (status, _) = request(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        let (status, _) = request(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

        server.shutdown();
        // Idempotent shutdown, and the port is released.
        server.shutdown();
    }
}
