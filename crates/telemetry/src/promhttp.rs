//! Minimal blocking `/metrics` HTTP listener.
//!
//! No HTTP crate is vendored; the endpoint speaks just enough HTTP/1.1
//! for `curl` and a Prometheus scraper: one request per connection,
//! `GET`/`HEAD /metrics` answered from [`MetricsRegistry::render`],
//! everything else 404/405, `Connection: close`. The accept loop runs on
//! one background thread with a non-blocking listener polled every few
//! tens of milliseconds so [`MetricsServer::shutdown`] (and `Drop`) can
//! stop it promptly; the simulation thread never blocks on a scrape.

use crate::metrics::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A live `/metrics` endpoint serving one [`MetricsRegistry`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9898"`; port 0 picks a free one)
    /// and starts serving `registry` until shutdown/drop.
    pub fn serve(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("arls-metrics".to_string())
            .spawn(move || accept_loop(listener, registry, stop_flag))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<MetricsRegistry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrapes are cheap and rare; serving inline keeps the
                // server a single predictable thread.
                let _ = serve_one(stream, &registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Reads one request head and answers it. Any I/O error just drops the
/// connection — a broken scraper must never disturb the run.
fn serve_one(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let head = match read_head(&mut stream)? {
        Head::Complete(head) => head,
        Head::TooLarge => {
            let body = "request head exceeds 8 KiB\n";
            let response = format!(
                "HTTP/1.1 431 Request Header Fields Too Large\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(response.as_bytes())?;
            return stream.flush();
        }
    };
    let mut parts = head
        .lines()
        .next()
        .unwrap_or_default()
        .split_ascii_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let path = path.split('?').next().unwrap_or_default();
    let (status, body) = match (method, path) {
        ("GET" | "HEAD", "/metrics") => ("200 OK", registry.render()),
        ("GET" | "HEAD", _) => ("404 Not Found", "not found; try /metrics\n".to_string()),
        _ => (
            "405 Method Not Allowed",
            "only GET is supported\n".to_string(),
        ),
    };
    let content_type = if status.starts_with("200") {
        // The exposition-format content type Prometheus expects.
        "text/plain; version=0.0.4; charset=utf-8"
    } else {
        "text/plain; charset=utf-8"
    };
    let mut response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if method != "HEAD" {
        response.push_str(&body);
    }
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Hard cap on the accumulated request head. A scrape request head is a
/// few hundred bytes; anything larger is a confused or hostile client.
const MAX_HEAD_BYTES: usize = 8192;

/// Outcome of reading one request head.
enum Head {
    /// Terminated by the blank line — or by peer half-close, which ends
    /// the head just as definitively (the client has nothing more to
    /// say, so waiting out the read timeout would be pointless).
    Complete(String),
    /// Grew past [`MAX_HEAD_BYTES`] without terminating; the caller must
    /// answer 431 and close rather than parse a truncated head.
    TooLarge,
}

/// Reads until the blank line ending the request head, bounded by
/// [`MAX_HEAD_BYTES`].
fn read_head(stream: &mut TcpStream) -> std::io::Result<Head> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            // Peer half-close: whatever arrived is the whole head.
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Ok(Head::TooLarge);
        }
    }
    Ok(Head::Complete(String::from_utf8_lossy(&buf).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn request(addr: SocketAddr, req: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(req.as_bytes()).unwrap();
        // Read the whole response. The server closes immediately after a
        // 431, which can surface as ECONNRESET once the status bytes have
        // arrived — treat that like EOF, the way a real scrape client does.
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset && !raw.is_empty() => {
                    break
                }
                Err(e) => panic!("read response: {e}"),
            }
        }
        let text = String::from_utf8_lossy(&raw).into_owned();
        let status = text.lines().next().unwrap_or_default().to_string();
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_and_rejects_other_paths() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = registry.counter("arls_up_total", "Liveness.", &[]);
        c.add(0, 5);
        let mut server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind");
        let addr = server.local_addr();

        let (status, body) = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("arls_up_total 5\n"), "{body}");

        // A scrape sees live values, not a snapshot from bind time.
        c.add(0, 2);
        let (_, body) = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(body.contains("arls_up_total 7\n"), "{body}");

        let (status, _) = request(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        let (status, _) = request(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

        server.shutdown();
        // Idempotent shutdown, and the port is released.
        server.shutdown();
    }

    #[test]
    fn oversized_head_is_answered_431_and_closed() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut server = MetricsServer::serve("127.0.0.1:0", registry).expect("bind");
        let addr = server.local_addr();

        // A head that never terminates: > 8 KiB of header bytes with no
        // blank line. The server must refuse it rather than buffer on.
        let mut req = String::from("GET /metrics HTTP/1.1\r\n");
        while req.len() <= MAX_HEAD_BYTES {
            req.push_str("X-Padding: ");
            req.push_str(&"a".repeat(500));
            req.push_str("\r\n");
        }
        let (status, _) = request(addr, &req);
        assert_eq!(status, "HTTP/1.1 431 Request Header Fields Too Large");

        // The endpoint still serves normal requests afterwards.
        let (status, _) = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        server.shutdown();
    }

    #[test]
    fn half_close_without_blank_line_still_gets_an_answer() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut server = MetricsServer::serve("127.0.0.1:0", registry).expect("bind");
        let addr = server.local_addr();

        // Send a request line with no terminating blank line, then shut
        // down the write half. The 0-byte read must end the head (the
        // client can say nothing more), not spin until the read timeout.
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n")
            .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = BufReader::new(s);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert_eq!(status.trim_end(), "HTTP/1.1 200 OK");
        server.shutdown();
    }
}
