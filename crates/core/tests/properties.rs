//! Property-based tests for the Adaptive-RL building blocks: grouping
//! conservation, memory-ring bounds, and the learning-value algebra.

use adaptive_rl::grouping::merge;
use adaptive_rl::memory::{Experience, SharedLearningMemory};
use adaptive_rl::{learning_value, ActionChoice, PolicyKind};
use proptest::prelude::*;
use simcore::SimTime;
use workload::{Priority, SiteId, Task, TaskId};

fn task_strategy() -> impl Strategy<Value = Task> {
    (
        any::<u64>(),
        600.0f64..7200.0,
        0.0f64..100.0,
        1.0f64..40.0,
        0u8..3,
    )
        .prop_map(|(id, size, arrival, window, prio)| Task {
            id: TaskId(id),
            size_mi: size,
            arrival: SimTime::new(arrival),
            deadline: SimTime::new(arrival + window),
            priority: match prio {
                0 => Priority::Low,
                1 => Priority::Medium,
                _ => Priority::High,
            },
            site: SiteId(0),
        })
}

fn action_strategy() -> impl Strategy<Value = ActionChoice> {
    (
        prop_oneof![Just(PolicyKind::Mixed), Just(PolicyKind::Identical)],
        1usize..7,
    )
        .prop_map(|(policy, opnum)| ActionChoice { policy, opnum })
}

proptest! {
    #[test]
    fn merge_conserves_tasks(
        tasks in prop::collection::vec(task_strategy(), 0..40),
        action in action_strategy(),
        now in 0.0f64..200.0,
        flush in 0.0f64..20.0,
    ) {
        let mut ids: Vec<u64> = tasks.iter().map(|t| t.id.0).collect();
        let mut pending = tasks;
        let groups = merge(&mut pending, action, SimTime::new(now), flush);
        let mut out: Vec<u64> = groups
            .iter()
            .flat_map(|g| g.tasks.iter().map(|t| t.id.0))
            .chain(pending.iter().map(|t| t.id.0))
            .collect();
        ids.sort_unstable();
        out.sort_unstable();
        prop_assert_eq!(ids, out, "no task lost or duplicated by merge");
    }

    #[test]
    fn merge_respects_opnum_and_policy(
        tasks in prop::collection::vec(task_strategy(), 1..40),
        action in action_strategy(),
    ) {
        let mut pending = tasks;
        let groups = merge(&mut pending, action, SimTime::new(1000.0), 10.0);
        for g in &groups {
            prop_assert!(g.tasks.len() <= action.opnum, "group exceeds opnum");
            prop_assert!(!g.tasks.is_empty());
            // EDF order inside the group.
            for pair in g.tasks.windows(2) {
                prop_assert!(pair[0].deadline <= pair[1].deadline);
            }
            match (action.policy, g.policy) {
                (PolicyKind::Mixed, platform::GroupPolicy::Mixed) => {}
                (PolicyKind::Identical, platform::GroupPolicy::Identical(p)) => {
                    prop_assert!(g.tasks.iter().all(|t| t.priority == p));
                }
                (want, got) => prop_assert!(false, "policy mismatch: {want:?} vs {got:?}"),
            }
        }
    }

    #[test]
    fn mixed_merge_never_holds_tasks(
        tasks in prop::collection::vec(task_strategy(), 1..40),
        opnum in 1usize..7,
    ) {
        let mut pending = tasks;
        let action = ActionChoice { policy: PolicyKind::Mixed, opnum };
        let _ = merge(&mut pending, action, SimTime::ZERO, 1e9);
        prop_assert!(pending.is_empty(), "mixed merge has no grouping delay");
    }

    #[test]
    fn memory_ring_is_bounded_and_keeps_recency(
        lvals in prop::collection::vec(0.0f64..100.0, 1..60),
        depth in 1usize..20,
    ) {
        let mut mem = SharedLearningMemory::new(1, depth);
        for (i, &lv) in lvals.iter().enumerate() {
            mem.record(Experience {
                agent: 0,
                action: ActionChoice { policy: PolicyKind::Mixed, opnum: 1 },
                l_val: lv,
                cycle: i as u64,
            });
        }
        prop_assert!(mem.len_of(0) <= depth);
        prop_assert_eq!(mem.len_of(0), lvals.len().min(depth));
        // The best remembered value is the max over the most recent window.
        let window = &lvals[lvals.len().saturating_sub(depth)..];
        let expect = window.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(mem.best_of(0).unwrap().l_val, expect);
    }

    #[test]
    fn learning_value_is_monotone(
        r1 in 0u32..50, r2 in 0u32..50,
        e1 in 0.0f64..10.0, e2 in 0.0f64..10.0,
        floor in 0.001f64..1.0,
    ) {
        // More reward at equal error never decreases l_val; more error at
        // equal reward never increases it.
        let (rlo, rhi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(learning_value(rhi, e1, floor) >= learning_value(rlo, e1, floor));
        let (elo, ehi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(learning_value(r1, elo, floor) >= learning_value(r1, ehi, floor));
        prop_assert!(learning_value(r1, e1, floor).is_finite());
    }

    #[test]
    fn candidate_actions_cover_the_space(max_procs in 1usize..12) {
        let c = ActionChoice::candidates(max_procs);
        prop_assert_eq!(c.len(), 2 * max_procs);
        for a in &c {
            prop_assert!(a.opnum >= 1 && a.opnum <= max_procs);
            let f = a.features(max_procs);
            prop_assert!(f[0] > 0.0 && f[0] <= 1.0);
            prop_assert_eq!(f[1] + f[2], 1.0, "policy one-hot");
        }
    }
}
