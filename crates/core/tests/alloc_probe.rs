//! Heap-allocation probe for the neural value path.
//!
//! Wraps the system allocator with a counting shim (a `#[global_allocator]`
//! is per-binary, hence this dedicated integration-test binary) and asserts
//! that a full decide→train learning cycle through the value estimator —
//! candidate encoding, batched scoring, argmax, online SGD step — performs
//! **zero** heap allocations once the reusable buffers have warmed up.

use adaptive_rl::action::ActionChoice;
use adaptive_rl::state::SiteObservation;
use adaptive_rl::value::ValueEstimator;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator with an allocation counter bolted on.
struct Counting;

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

fn obs() -> SiteObservation {
    SiteObservation {
        mean_load: 2.0,
        mean_queue_free: 0.5,
        mean_power_frac: 0.6,
        mean_capacity: 1500.0,
        max_procs: 6,
        pending: 8,
        priority_mix: [0.3, 0.4, 0.3],
        availability: 1.0,
    }
}

#[test]
fn learning_cycle_is_allocation_free_after_warmup() {
    let mut v = ValueEstimator::new(16, 0.05, 0.5, 7);
    let o = obs();
    let cands = ActionChoice::candidates(6);

    // Warm-up: sizes the workspace, the candidate scratch matrix and the
    // score buffer.
    for i in 0..3 {
        let a = v.best_action(&o, &cands);
        let _ = v.predict(&o, a);
        let _ = v.train(&o, a, i as f64 / 3.0);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..1000u32 {
        let a = v.best_action(&o, &cands);
        let _ = v.predict(&o, a);
        let _ = v.train(&o, a, f64::from(i % 10) / 10.0);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "decide→train cycles must not touch the heap after warm-up"
    );
}
