//! The Adaptive-RL scheduler: agents + shared memory + value estimator
//! wired into the platform's [`Scheduler`] interface.

use crate::action::ActionChoice;
use crate::agent::Agent;
use crate::config::AdaptiveRlConfig;
use crate::feedback::{learning_value, value_target};
use crate::grouping::{self, MergedGroup};
use crate::memory::{Experience, SharedLearningMemory};
use crate::state::{SiteObsCache, SiteObservation};
use crate::value::ValueEstimator;
use platform::{
    AssignmentFeedback, Command, GroupFeedback, LiveMetrics, NodeAddr, PlatformView, ProcAddr,
    Scheduler, SyncRecord,
};
use simcore::rng::RngStream;
use simcore::time::SimTime;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use telemetry::{Phase, PhaseProfiler, Recorder, TraceLevel, Value};
use workload::{SiteId, Task};

/// A dispatched-but-unresolved sample awaiting its reward.
#[derive(Debug, Clone, Copy)]
struct Sample {
    obs: SiteObservation,
    action: ActionChoice,
    site: u32,
}

/// One site's phase-A decision, awaiting the batched scoring pass.
///
/// `action` is `Some` when the agent resolved the choice without the value
/// net (memory replay / exploration); `None` marks an exploit decision whose
/// candidates occupy rows `[start, start + len)` of the estimator's batch.
#[derive(Debug, Clone, Copy)]
struct PendingDecision {
    site: usize,
    obs: SiteObservation,
    src: crate::agent::ChoiceSource,
    action: Option<ActionChoice>,
    start: usize,
    len: usize,
}

/// One eligible node captured by `select_node`'s streaming pass: address,
/// Eq. (2) capacity, availability penalty, and the deadline-feasibility
/// screen's verdict.
#[derive(Debug, Clone, Copy)]
struct NodeCand {
    addr: NodeAddr,
    cap: f64,
    pen: f64,
    feasible: bool,
}

/// The paper's Adaptive-RL energy-management scheduler.
///
/// ```
/// use adaptive_rl::{AdaptiveRl, AdaptiveRlConfig};
/// use platform::{ExecConfig, ExecEngine, Platform, PlatformSpec};
/// use simcore::rng::RngStream;
/// use workload::{Workload, WorkloadSpec};
///
/// let rng = RngStream::root(7);
/// let platform = Platform::generate(PlatformSpec::small(2, 2, 4), &rng.derive("p"));
/// let wl = Workload::generate(
///     WorkloadSpec::paper(80, 2, platform.reference_speed()),
///     &rng.derive("w"),
/// );
/// let mut sched = AdaptiveRl::new(platform.num_sites(), AdaptiveRlConfig::default());
/// let result = ExecEngine::new(ExecConfig::default()).run(platform, wl.tasks, &mut sched);
/// assert_eq!(result.incomplete, 0);
/// assert!(sched.cycles() > 0, "the agent learned from completed groups");
/// ```
pub struct AdaptiveRl {
    cfg: AdaptiveRlConfig,
    agents: Vec<Agent>,
    memory: SharedLearningMemory,
    value: ValueEstimator,
    epsilon: f64,
    cycles: u64,
    /// Samples for Dispatch commands issued this round, FIFO — resolved by
    /// the engine's in-order `on_assignment` / `on_rejected` callbacks.
    issued: VecDeque<Sample>,
    /// Samples awaiting group completion, keyed by group id.
    in_flight: HashMap<u64, Sample>,
    /// Reusable per-round ledger of queue slots claimed by this round's
    /// dispatches — cleared per site, capacity kept across rounds.
    used_scratch: Vec<(NodeAddr, usize)>,
    /// Reusable candidate-node pool for `select_node`'s streaming pass —
    /// overwritten per group, capacity kept across rounds.
    node_scratch: Vec<NodeCand>,
    /// Reusable candidate-action buffer — refilled per site, capacity
    /// kept across rounds.
    cand_scratch: Vec<ActionChoice>,
    /// Reusable phase-A decision records — one entry per deciding site,
    /// cleared per round, capacity kept across rounds.
    pending_scratch: Vec<PendingDecision>,
    /// Reusable flat store of every deferred site's candidates, parallel to
    /// the estimator's batch rows (cleared per round).
    batch_cands: Vec<ActionChoice>,
    /// Per-site observation memo, keyed by the platform's site mutation
    /// epoch — skips the per-node scan when nothing at the site changed
    /// since the last dispatch (bit-identical reuse, so decisions are
    /// unaffected).
    obs_cache: Vec<SiteObsCache>,
    /// Telemetry recorder ([`telemetry::NullRecorder`] unless attached
    /// via [`AdaptiveRl::with_recorder`]); `Arc` so the replicated
    /// runner can share one sink across schedulers.
    rec: Arc<dyn Recorder>,
    /// Level gates cached at attach time — the untraced hot path pays
    /// one predictable branch per site.
    t_dec: bool,
    t_cyc: bool,
    /// Shared-memory consultations that replayed a remembered action /
    /// fell through to ε-greedy (tracked only while tracing).
    mem_hits: u64,
    mem_misses: u64,
    /// Live metric handles (decision-latency histogram, ε gauge);
    /// `None` keeps the hot path a single predictable branch.
    mon: Option<Arc<LiveMetrics>>,
    /// Phase profiler for `--profile` runs; `None` skips every clock
    /// read around observation build / scoring / training.
    prof: Option<Arc<PhaseProfiler>>,
    /// Global site id of this instance's (single) agent when built via
    /// [`AdaptiveRl::for_shard`]; `0` in the sequential engine, where
    /// local agent indices *are* global site ids.
    site_offset: u32,
    /// Whether this instance is one shard of a sharded run: experiences
    /// are logged for cross-shard sync and the memory spans every site.
    shard_mode: bool,
    /// Cross-shard sync records produced since the last drain.
    sync_log: Vec<SyncRecord>,
    /// Per-instance sequence counter for the canonical sync order.
    sync_seq: u64,
}

impl AdaptiveRl {
    /// Creates a scheduler for a platform with `num_sites` resource sites.
    ///
    /// # Panics
    /// Panics on an invalid configuration or zero sites.
    pub fn new(num_sites: usize, cfg: AdaptiveRlConfig) -> Self {
        cfg.validate();
        assert!(num_sites > 0, "need at least one site");
        let root = RngStream::root(cfg.seed);
        let agents = (0..num_sites)
            .map(|s| Agent::new(SiteId(s as u32), root.derive_indexed("agent", s as u64)))
            .collect();
        AdaptiveRl {
            agents,
            memory: SharedLearningMemory::new(num_sites, cfg.memory_depth),
            value: ValueEstimator::with_precision(
                cfg.hidden,
                cfg.lr,
                cfg.momentum,
                cfg.seed,
                cfg.precision,
            ),
            epsilon: cfg.epsilon0,
            cycles: 0,
            issued: VecDeque::new(),
            in_flight: HashMap::new(),
            used_scratch: Vec::new(),
            node_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            pending_scratch: Vec::new(),
            batch_cands: Vec::new(),
            obs_cache: vec![SiteObsCache::default(); num_sites],
            rec: Arc::new(telemetry::NullRecorder),
            t_dec: false,
            t_cyc: false,
            mem_hits: 0,
            mem_misses: 0,
            mon: None,
            prof: None,
            site_offset: 0,
            shard_mode: false,
            sync_log: Vec::new(),
            sync_seq: 0,
            cfg,
        }
    }

    /// Creates the scheduler instance owning global site `global_site` of
    /// a sharded run over `total_sites` sites.
    ///
    /// The single local agent draws from the same counter-based stream
    /// the sequential engine would hand agent `global_site`
    /// (`root(seed).derive_indexed("agent", global_site)`), and the
    /// shared learning memory spans all `total_sites` rings so every
    /// shard holds an identical replica: local experiences enter
    /// immediately, foreign ones at the next epoch barrier via
    /// [`Scheduler::apply_sync`], in canonical order. Exploration rate
    /// and the value estimator stay per-site — decentralised learners,
    /// as in the paper's multi-agent story.
    ///
    /// # Panics
    /// Panics on an invalid configuration or `global_site >= total_sites`.
    pub fn for_shard(global_site: usize, total_sites: usize, cfg: AdaptiveRlConfig) -> Self {
        assert!(
            global_site < total_sites,
            "site {global_site} outside platform of {total_sites} sites"
        );
        let mut s = Self::new(1, cfg);
        let root = RngStream::root(s.cfg.seed);
        s.agents = vec![Agent::new(
            SiteId(0),
            root.derive_indexed("agent", global_site as u64),
        )];
        s.memory = SharedLearningMemory::new(total_sites, s.cfg.memory_depth);
        s.site_offset = global_site as u32;
        s.shard_mode = true;
        s
    }

    /// Attaches a telemetry recorder: per-decision events (chosen node,
    /// policy, `pw`, ε, shared-memory hit/miss), a decision-latency
    /// histogram, and per-learning-cycle summaries (value-net training
    /// error, exploration rate).
    pub fn with_recorder(mut self, rec: Arc<dyn Recorder>) -> Self {
        self.t_dec = rec.wants(TraceLevel::Decisions);
        self.t_cyc = rec.wants(TraceLevel::Cycles);
        self.rec = rec;
        self
    }

    /// Attaches live metric handles: every dispatch round that produced
    /// commands observes its wall-clock latency into
    /// `arls_decision_latency_seconds`, and every learning cycle updates
    /// the `arls_epsilon` gauge. Strictly observing.
    pub fn with_metrics(mut self, mon: Arc<LiveMetrics>) -> Self {
        self.mon = Some(mon);
        self
    }

    /// Attaches a phase profiler: observation building, batched candidate
    /// scoring and value-net training report their wall time. Strictly
    /// observing; without it the scheduler never reads the clock for
    /// profiling.
    pub fn with_profiler(mut self, prof: Arc<PhaseProfiler>) -> Self {
        self.prof = Some(prof);
        self
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Learning cycles completed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Read access to the shared-learning memory (diagnostics).
    pub fn memory(&self) -> &SharedLearningMemory {
        &self.memory
    }

    /// Eq. (10) processing weight of a candidate group.
    fn group_pw(tasks: &[Task]) -> f64 {
        let work: f64 = tasks.iter().map(|t| t.size_mi).sum();
        let budget: f64 = tasks
            .iter()
            .map(|t| t.deadline.since(t.arrival).as_f64())
            .sum();
        work / budget.max(f64::MIN_POSITIVE)
    }

    /// Picks the node whose capacity best fits the group (minimum Eq. (9)
    /// error), honouring queue slots already claimed this round.
    /// `scratch` is a reusable buffer for the captured candidate pool —
    /// contents are overwritten.
    fn select_node(
        &self,
        view: &PlatformView<'_>,
        site: SiteId,
        group: &MergedGroup,
        used: &[(NodeAddr, usize)],
        scratch: &mut Vec<NodeCand>,
    ) -> Option<NodeAddr> {
        use std::cmp::Ordering;
        let pw = Self::group_pw(&group.tasks);
        let claimed = |addr: NodeAddr| {
            used.iter()
                .find(|(a, _)| *a == addr)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        // `available_processors()` equals `num_processors()` on a healthy
        // platform; under injected faults it excludes downed processors, so
        // the agent never offers a group wider than a node can still serve.
        let eligible = |n: &platform::NodeView<'_>| {
            n.queue_available() > claimed(n.addr()) && n.available_processors() >= group.tasks.len()
        };
        // Degradation-aware placement: a positive penalty inflates the
        // assignment error of nodes that have lost processors.
        let avail_pen =
            |n: &platform::NodeView<'_>| self.cfg.availability_penalty * (1.0 - n.availability());
        if self.cfg.use_error_feedback {
            // Both feedback signals steer placement: the reward needs the
            // deadline met, the error needs pw matched to capacity. First
            // keep nodes that can plausibly finish the group's largest
            // member before the earliest deadline, then minimise Eq. (9)
            // among them (falling back to all eligible nodes when none
            // qualifies).
            let now = view.now();
            let max_size = group
                .tasks
                .iter()
                .map(|t| t.size_mi)
                .fold(0.0_f64, f64::max);
            let earliest_slack = group
                .tasks
                .iter()
                .map(|t| t.deadline.since(now).as_f64())
                .fold(f64::INFINITY, f64::min);
            let feasible = |n: &platform::NodeView<'_>| {
                let mean_speed = n.raw_speed() / n.num_processors() as f64 * n.throttle();
                max_size / mean_speed.max(1.0) <= earliest_slack
            };
            // One streaming pass over the site's nodes captures each
            // eligible node's (addr, capacity, penalty, feasibility) in
            // site order while folding the screen aggregates; selection
            // then runs over the captured pool without touching node state
            // again. Nothing mutates between capture and selection, so the
            // chosen node — values, order, and tie rules — is bit-identical
            // to the former two-pass formulation.
            scratch.clear();
            let mut any_feasible = false;
            let mut min_cap_feasible = f64::INFINITY;
            let mut min_cap_eligible = f64::INFINITY;
            for n in view.site_nodes(site) {
                if !eligible(&n) {
                    continue;
                }
                let cap = n.processing_capacity();
                min_cap_eligible = min_cap_eligible.min(cap);
                let fe = feasible(&n);
                if fe {
                    any_feasible = true;
                    min_cap_feasible = min_cap_feasible.min(cap);
                }
                scratch.push(NodeCand {
                    addr: n.addr(),
                    cap,
                    pen: avail_pen(&n),
                    feasible: fe,
                });
            }
            if scratch.is_empty() {
                return None;
            }
            let min_cap = if any_feasible {
                min_cap_feasible
            } else {
                min_cap_eligible
            };
            // §IV.D.1: "a task group with a small pw is required to be
            // executed as early as possible" — when every candidate node
            // over-provides capacity, the earliest finish is the fastest
            // node. Otherwise match pw to capacity (minimum Eq. (9)
            // error). Original tie rules: max_by keeps the LAST maximal
            // element, min_by the FIRST minimal.
            let mut best: Option<(NodeAddr, f64)> = None;
            for c in scratch.iter().filter(|c| !any_feasible || c.feasible) {
                if pw <= min_cap {
                    // The penalty discounts a degraded node's capacity
                    // (no-op at penalty 0 or full availability).
                    let v = c.cap * (1.0 - c.pen).max(0.0);
                    match best {
                        Some((_, bc)) if v.total_cmp(&bc) == Ordering::Less => {}
                        _ => best = Some((c.addr, v)),
                    }
                } else {
                    let e = (1.0 - c.cap / pw).abs() + c.pen;
                    match best {
                        Some((_, be)) if e.total_cmp(&be) != Ordering::Less => {}
                        _ => best = Some((c.addr, e)),
                    }
                }
            }
            best.map(|(a, _)| a)
        } else {
            // max_by_key keeps the last maximal element.
            let mut best: Option<(NodeAddr, usize)> = None;
            for n in view.site_nodes(site) {
                if !eligible(&n) {
                    continue;
                }
                let k = n.queue_available() - claimed(n.addr());
                match best {
                    Some((_, bk)) if k < bk => {}
                    _ => best = Some((n.addr(), k)),
                }
            }
            best.map(|(a, _)| a)
        }
    }
}

impl Scheduler for AdaptiveRl {
    fn name(&self) -> &str {
        "Adaptive-RL"
    }

    fn on_arrivals(&mut self, _now: SimTime, site: SiteId, tasks: Vec<Task>) {
        self.agents[site.0 as usize].buffer(tasks);
    }

    fn dispatch(&mut self, now: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
        // Wall-clock only ticks while tracing or monitoring; the plain
        // path never touches `Instant`.
        let t0 = if self.t_dec || self.mon.is_some() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut cmds = Vec::new();
        let mut used = std::mem::take(&mut self.used_scratch);
        let mut node_pool = std::mem::take(&mut self.node_scratch);
        // Phase A: per-site observation and the cheap (non-neural) part of
        // action selection, staging every exploiting site's candidates into
        // one scoring batch. Safe to split from dispatch: each agent draws
        // from its own RNG stream, the memory is read-only here, and each
        // site's pending pool and observation are independent.
        let mut decisions = std::mem::take(&mut self.pending_scratch);
        decisions.clear();
        let mut batch_cands = std::mem::take(&mut self.batch_cands);
        batch_cands.clear();
        self.value.begin_batch();
        for idx in 0..self.agents.len() {
            if self.agents[idx].pending.is_empty() {
                continue;
            }
            let site = SiteId(idx as u32);
            let obs_t = self.prof.as_ref().map(|_| std::time::Instant::now());
            let obs = SiteObservation::observe_cached(
                view,
                site,
                &self.agents[idx].pending,
                &mut self.obs_cache[idx],
            );
            if let (Some(p), Some(t)) = (&self.prof, obs_t) {
                p.record_duration(Phase::ObsBuild, t.elapsed());
            }
            if obs.max_procs == 0 {
                continue;
            }
            ActionChoice::candidates_into(obs.max_procs, &mut self.cand_scratch);
            if let Some(forced) = self.cfg.force_policy {
                self.cand_scratch.retain(|c| c.policy == forced);
            }
            let (action, src) = self.agents[idx].decide(
                &self.cand_scratch,
                self.epsilon,
                self.cfg.use_value_net,
                &self.memory,
                self.cfg.use_shared_memory,
                obs.max_procs,
            );
            let (start, len) = if action.is_none() {
                let start = self.value.push_candidates(&obs, &self.cand_scratch);
                batch_cands.extend_from_slice(&self.cand_scratch);
                (start, self.cand_scratch.len())
            } else {
                (0, 0)
            };
            decisions.push(PendingDecision {
                site: idx,
                obs,
                src,
                action,
                start,
                len,
            });
        }
        // One batched kernel pass scores every staged candidate row.
        if self.value.batch_rows() > 0 {
            let score_t = self.prof.as_ref().map(|_| std::time::Instant::now());
            self.value.score_batch();
            if let (Some(p), Some(t)) = (&self.prof, score_t) {
                p.record_duration(Phase::Score, t.elapsed());
            }
        }
        // Phase B: resolve each site's action (batch argmax for exploit
        // decisions), then group, place, and emit — in the original site
        // order, so telemetry, the issued queue, and the command stream are
        // identical to the per-site formulation.
        for d in &decisions {
            let idx = d.site;
            let site = SiteId(idx as u32);
            let obs = d.obs;
            let src = d.src;
            let action = match d.action {
                Some(a) => a,
                None => batch_cands[d.start + self.value.argmax_in(d.start, d.len)],
            };
            if self.t_cyc && self.cfg.use_shared_memory {
                if src == crate::agent::ChoiceSource::MemoryReplay {
                    self.mem_hits += 1;
                    self.rec.counter_add("memory.hits", 1);
                } else {
                    self.mem_misses += 1;
                    self.rec.counter_add("memory.misses", 1);
                }
            }
            // Hold partial chunks only while the site has no idle
            // processor — grouping must never delay tasks that could start
            // right away. Answered from the cached site aggregates (same
            // predicate as the former per-node scan).
            let site_idle = view.site_has_free_node(site);
            let effective_flush = if site_idle { 0.0 } else { self.cfg.flush_age };
            let groups =
                grouping::merge(&mut self.agents[idx].pending, action, now, effective_flush);
            used.clear();
            for group in groups {
                match self.select_node(view, site, &group, &used, &mut node_pool) {
                    Some(addr) => {
                        match used.iter_mut().find(|(a, _)| *a == addr) {
                            Some((_, c)) => *c += 1,
                            None => used.push((addr, 1)),
                        }
                        if self.t_dec {
                            self.rec.event(
                                "decision",
                                now.as_f64(),
                                0,
                                &[
                                    ("site", Value::U64(idx as u64)),
                                    ("node", Value::U64(addr.node as u64)),
                                    (
                                        "policy",
                                        Value::Str(match group.policy {
                                            platform::GroupPolicy::Mixed => "mixed",
                                            platform::GroupPolicy::Identical(_) => "identical",
                                        }),
                                    ),
                                    ("opnum", Value::U64(action.opnum as u64)),
                                    ("size", Value::U64(group.tasks.len() as u64)),
                                    ("pw", Value::F64(Self::group_pw(&group.tasks))),
                                    ("epsilon", Value::F64(self.epsilon)),
                                    (
                                        "source",
                                        Value::Str(match src {
                                            crate::agent::ChoiceSource::MemoryReplay => "memory",
                                            crate::agent::ChoiceSource::Explore => "explore",
                                            crate::agent::ChoiceSource::Exploit => "exploit",
                                        }),
                                    ),
                                ],
                            );
                        }
                        self.issued.push_back(Sample {
                            obs,
                            action,
                            site: idx as u32,
                        });
                        cmds.push(Command::Dispatch {
                            node: addr,
                            tasks: group.tasks,
                            policy: group.policy,
                        });
                    }
                    None => {
                        // Site saturated: keep the tasks pending.
                        self.agents[idx].pending.extend(group.tasks);
                    }
                }
            }
        }
        self.used_scratch = used;
        self.node_scratch = node_pool;
        self.pending_scratch = decisions;
        self.batch_cands = batch_cands;
        if let Some(t0) = t0 {
            // Only rounds that produced commands count as decisions.
            if !cmds.is_empty() {
                let secs = t0.elapsed().as_secs_f64();
                if self.t_dec {
                    self.rec.histogram("decision_latency_us", secs * 1e6);
                }
                if let Some(m) = &self.mon {
                    m.decision_latency.observe(m.shard, secs);
                }
            }
        }
        cmds
    }

    fn on_assignment(&mut self, _now: SimTime, fb: &AssignmentFeedback) {
        if let Some(sample) = self.issued.pop_front() {
            self.in_flight.insert(fb.group.0, sample);
        }
    }

    fn on_rejected(&mut self, _now: SimTime, site: SiteId, tasks: Vec<Task>) {
        let _ = self.issued.pop_front();
        self.agents[site.0 as usize].buffer(tasks);
    }

    fn on_tick(&mut self, _now: SimTime, view: &PlatformView<'_>) -> Vec<Command> {
        if !self.cfg.power_gating {
            return Vec::new();
        }
        // Hibernate processors of drained nodes while the agent has no
        // pending work; the engine wakes them on demand.
        let mut cmds = Vec::new();
        for (idx, agent) in self.agents.iter().enumerate() {
            if !agent.pending.is_empty() {
                continue;
            }
            let site = SiteId(idx as u32);
            for node in view.site_nodes(site) {
                if node.queue_len() > 0 {
                    continue;
                }
                for p in 0..node.num_processors() {
                    if node.proc_is_idle(p) {
                        cmds.push(Command::Sleep(ProcAddr {
                            node: node.addr(),
                            proc: p as u32,
                        }));
                    }
                }
            }
        }
        cmds
    }

    fn on_group_aborted(&mut self, _now: SimTime, group: platform::GroupId) {
        // No Eq. (8) reward will ever arrive for a group a failure
        // destroyed; drop the waiting sample so it cannot leak.
        self.in_flight.remove(&group.0);
    }

    fn exploration(&self) -> Option<f64> {
        Some(self.epsilon)
    }

    fn on_group_complete(&mut self, now: SimTime, fb: &GroupFeedback) {
        self.cycles += 1;
        self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_floor);
        if let Some(m) = &self.mon {
            m.epsilon.set(self.epsilon);
        }
        let Some(sample) = self.in_flight.remove(&fb.group.0) else {
            return;
        };
        let l_val = learning_value(fb.reward, fb.error, self.cfg.error_floor);
        self.memory.record(Experience {
            // In shard mode the single local agent occupies ring
            // `site_offset`; sequentially the offset is 0 and local
            // indices are global.
            agent: self.site_offset + sample.site,
            action: sample.action,
            l_val,
            cycle: self.cycles,
        });
        if self.shard_mode {
            // Queue the experience for the epoch barrier; `seq` preserves
            // this site's production order inside one epoch batch.
            self.sync_seq += 1;
            self.sync_log.push(SyncRecord {
                time: now,
                seq: self.sync_seq,
                site: self.site_offset,
                payload: [
                    match sample.action.policy {
                        crate::action::PolicyKind::Mixed => 0,
                        crate::action::PolicyKind::Identical => 1,
                    },
                    sample.action.opnum as u64,
                    l_val.to_bits(),
                    self.cycles,
                ],
            });
        }
        // The value-table delta: `train` returns the pre-update squared
        // error. NaN (rendered as JSON null) marks cycles that trained
        // nothing.
        let mut value_mse = f64::NAN;
        if self.cfg.use_reward_feedback {
            let target = value_target(fb.reward, fb.size, fb.error);
            if self.cfg.use_value_net {
                let train_t = self.prof.as_ref().map(|_| std::time::Instant::now());
                value_mse = self.value.train(&sample.obs, sample.action, target);
                if let (Some(p), Some(t)) = (&self.prof, train_t) {
                    p.record_duration(Phase::Train, t.elapsed());
                }
            }
            self.agents[sample.site as usize].note_reward(fb.success_rate());
        }
        if self.t_cyc {
            self.rec.counter_add("learning.cycles", 1);
            self.rec.event(
                "learning_cycle",
                now.as_f64(),
                0,
                &[
                    ("cycle", Value::U64(self.cycles)),
                    ("site", Value::U64(sample.site as u64)),
                    ("reward", Value::U64(fb.reward as u64)),
                    ("size", Value::U64(fb.size as u64)),
                    ("err", Value::F64(fb.error)),
                    ("l_val", Value::F64(l_val)),
                    ("value_mse", Value::F64(value_mse)),
                    ("epsilon", Value::F64(self.epsilon)),
                    ("lr", Value::F64(self.cfg.lr)),
                    ("mem_len", Value::U64(self.memory.len() as u64)),
                    ("mem_hits", Value::U64(self.mem_hits)),
                    ("mem_misses", Value::U64(self.mem_misses)),
                ],
            );
        }
    }

    fn drain_sync(&mut self, out: &mut Vec<SyncRecord>) {
        out.append(&mut self.sync_log);
    }

    fn apply_sync(&mut self, rec: &SyncRecord) {
        // Foreign shards' experiences replicate into this instance's
        // shared memory; a malformed payload is ignored (the wire format
        // is produced by this module, so this is defensive only).
        let policy = match rec.payload[0] {
            0 => crate::action::PolicyKind::Mixed,
            1 => crate::action::PolicyKind::Identical,
            _ => return,
        };
        let opnum = rec.payload[1] as usize;
        if opnum == 0 || rec.site as usize >= self.memory.num_agents() {
            return;
        }
        self.memory.record(Experience {
            agent: rec.site,
            action: ActionChoice { policy, opnum },
            l_val: f64::from_bits(rec.payload[2]),
            cycle: rec.payload[3],
        });
    }

    fn save_state(&mut self, w: &mut snapshot::SnapWriter) {
        w.f64(self.epsilon);
        w.u64(self.cycles);
        w.u64(self.mem_hits);
        w.u64(self.mem_misses);
        w.usize(self.agents.len());
        for a in &self.agents {
            w.usize(a.pending.len());
            for t in &a.pending {
                t.snap_write(w);
            }
            w.opt_f64(a.last_success);
            w.bool(a.consult_memory);
            w.u64(a.rng().seed());
            for s in a.rng().state() {
                w.u64(s);
            }
        }
        w.usize(self.memory.num_agents());
        for agent in 0..self.memory.num_agents() {
            w.usize(self.memory.len_of(agent as u32));
            for exp in self.memory.iter_of(agent as u32) {
                write_action(w, exp.action);
                // Raw bits: a diverged learner can legitimately record a
                // NaN learning value (it must survive the round trip).
                w.f64(exp.l_val);
                w.u64(exp.cycle);
            }
        }
        // The snapshot surface is f64 in both kernel precisions (f32 → f64
        // widening is exact), so the byte stream matches the pre-batching
        // format and f32 runs resume bit-exactly.
        let mut params = Vec::new();
        let mut velocity = Vec::new();
        let steps = self.value.snapshot_into(&mut params, &mut velocity);
        w.usize(params.len());
        for &p in &params {
            w.f64(p);
        }
        w.usize(velocity.len());
        for &v in &velocity {
            w.f64(v);
        }
        w.u64(steps);
        w.usize(self.issued.len());
        for s in &self.issued {
            write_sample(w, s);
        }
        let mut keys: Vec<u64> = self.in_flight.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            w.u64(k);
            write_sample(w, &self.in_flight[&k]);
        }
    }

    fn load_state(
        &mut self,
        r: &mut snapshot::SnapReader<'_>,
    ) -> Result<(), snapshot::SnapshotError> {
        use snapshot::corrupt;
        let epsilon = r.f64_finite()?;
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(corrupt(format!("epsilon {epsilon} outside [0, 1]")));
        }
        let cycles = r.u64()?;
        let mem_hits = r.u64()?;
        let mem_misses = r.u64()?;
        let n_agents = r.len_hint()?;
        if n_agents != self.agents.len() {
            return Err(corrupt(format!(
                "snapshot has {n_agents} agents, scheduler has {}",
                self.agents.len()
            )));
        }
        for a in &mut self.agents {
            let n_pending = r.len_hint()?;
            let mut pending = Vec::with_capacity(n_pending);
            for _ in 0..n_pending {
                pending.push(Task::snap_read(r)?);
            }
            a.pending = pending;
            a.last_success = r.opt_f64()?;
            a.consult_memory = r.bool()?;
            let seed = r.u64()?;
            let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            a.set_rng(RngStream::from_parts(seed, state));
        }
        let n_rings = r.len_hint()?;
        if n_rings != self.memory.num_agents() {
            return Err(corrupt(format!(
                "snapshot has {n_rings} memory rings, scheduler has {}",
                self.memory.num_agents()
            )));
        }
        let mut memory = SharedLearningMemory::new(n_rings, self.memory.depth());
        for agent in 0..n_rings {
            let n_exp = r.len_hint()?;
            if n_exp > self.memory.depth() {
                return Err(corrupt(format!(
                    "ring {agent} holds {n_exp} experiences, depth is {}",
                    self.memory.depth()
                )));
            }
            for _ in 0..n_exp {
                let action = read_action(r)?;
                let l_val = r.f64()?;
                let cycle = r.u64()?;
                memory.record(Experience {
                    agent: agent as u32,
                    action,
                    l_val,
                    cycle,
                });
            }
        }
        let n_params = r.len_hint()?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(r.f64()?);
        }
        let n_vel = r.len_hint()?;
        let mut velocity = Vec::with_capacity(n_vel);
        for _ in 0..n_vel {
            velocity.push(r.f64()?);
        }
        let steps = r.u64()?;
        if !self
            .value
            .restore_snapshot(&params, velocity.as_slice(), steps)
        {
            return Err(corrupt(format!(
                "value net shape mismatch: snapshot has {n_params} params / {n_vel} velocities, \
                 network has {}",
                self.value.param_count()
            )));
        }
        let n_issued = r.len_hint()?;
        let mut issued = VecDeque::with_capacity(n_issued);
        for _ in 0..n_issued {
            issued.push_back(read_sample(r, n_agents)?);
        }
        let n_flight = r.len_hint()?;
        let mut in_flight = HashMap::with_capacity(n_flight);
        for _ in 0..n_flight {
            let key = r.u64()?;
            let sample = read_sample(r, n_agents)?;
            if in_flight.insert(key, sample).is_some() {
                return Err(corrupt(format!("duplicate in-flight group {key}")));
            }
        }
        self.epsilon = epsilon;
        self.cycles = cycles;
        self.mem_hits = mem_hits;
        self.mem_misses = mem_misses;
        self.memory = memory;
        self.issued = issued;
        self.in_flight = in_flight;
        Ok(())
    }
}

fn write_action(w: &mut snapshot::SnapWriter, a: ActionChoice) {
    w.u8(match a.policy {
        crate::action::PolicyKind::Mixed => 0,
        crate::action::PolicyKind::Identical => 1,
    });
    w.usize(a.opnum);
}

fn read_action(r: &mut snapshot::SnapReader<'_>) -> Result<ActionChoice, snapshot::SnapshotError> {
    let policy = match r.u8()? {
        0 => crate::action::PolicyKind::Mixed,
        1 => crate::action::PolicyKind::Identical,
        t => return Err(snapshot::corrupt(format!("unknown policy tag {t}"))),
    };
    let opnum = r.usize()?;
    if opnum == 0 {
        return Err(snapshot::corrupt("action opnum must be positive"));
    }
    Ok(ActionChoice { policy, opnum })
}

fn write_sample(w: &mut snapshot::SnapWriter, s: &Sample) {
    w.f64(s.obs.mean_load);
    w.f64(s.obs.mean_queue_free);
    w.f64(s.obs.mean_power_frac);
    w.f64(s.obs.mean_capacity);
    w.usize(s.obs.max_procs);
    w.usize(s.obs.pending);
    for &m in &s.obs.priority_mix {
        w.f64(m);
    }
    w.f64(s.obs.availability);
    write_action(w, s.action);
    w.u32(s.site);
}

fn read_sample(
    r: &mut snapshot::SnapReader<'_>,
    num_sites: usize,
) -> Result<Sample, snapshot::SnapshotError> {
    let obs = SiteObservation {
        mean_load: r.f64_finite()?,
        mean_queue_free: r.f64_finite()?,
        mean_power_frac: r.f64_finite()?,
        mean_capacity: r.f64_finite()?,
        max_procs: r.usize()?,
        pending: r.usize()?,
        priority_mix: [r.f64_finite()?, r.f64_finite()?, r.f64_finite()?],
        availability: r.f64_finite()?,
    };
    let action = read_action(r)?;
    let site = r.u32()?;
    if site as usize >= num_sites {
        return Err(snapshot::corrupt(format!(
            "sample site {site} out of range"
        )));
    }
    Ok(Sample { obs, action, site })
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::{ExecConfig, ExecEngine, Platform, PlatformSpec, RunResult};
    use workload::{Workload, WorkloadSpec};

    fn run(seed: u64, n_tasks: usize, iat: f64, cfg: AdaptiveRlConfig) -> RunResult {
        let rng = RngStream::root(seed);
        let platform = Platform::generate(PlatformSpec::small(2, 3, 4), &rng.derive("p"));
        let mut wspec = WorkloadSpec::paper(n_tasks, 2, platform.reference_speed());
        wspec.mean_interarrival = iat;
        let wl = Workload::generate(wspec, &rng.derive("w"));
        let mut sched = AdaptiveRl::new(2, cfg);
        ExecEngine::new(ExecConfig::default()).run(platform, wl.tasks, &mut sched)
    }

    #[test]
    fn completes_all_tasks_light_load() {
        let r = run(1, 300, 2.0, AdaptiveRlConfig::default());
        assert_eq!(r.incomplete, 0, "outcome {}", r.outcome);
        assert_eq!(r.scheduler, "Adaptive-RL");
        assert!(r.success_rate() > 0.5, "success {}", r.success_rate());
    }

    #[test]
    fn completes_all_tasks_heavy_load() {
        let r = run(2, 600, 0.35, AdaptiveRlConfig::default());
        assert_eq!(r.incomplete, 0, "outcome {}", r.outcome);
        assert!(r.groups_completed > 0);
        // Under heavy load grouping must actually group.
        assert!(
            (r.groups_dispatched as usize) < 600,
            "dispatched {} groups for 600 tasks",
            r.groups_dispatched
        );
    }

    #[test]
    fn learning_state_advances() {
        let rng = RngStream::root(3);
        let platform = Platform::generate(PlatformSpec::small(2, 3, 4), &rng.derive("p"));
        let mut wspec = WorkloadSpec::paper(400, 2, platform.reference_speed());
        wspec.mean_interarrival = 0.5;
        let wl = Workload::generate(wspec, &rng.derive("w"));
        let mut sched = AdaptiveRl::new(2, AdaptiveRlConfig::default());
        let eps0 = sched.epsilon();
        let r = ExecEngine::new(ExecConfig::default()).run(platform, wl.tasks, &mut sched);
        assert_eq!(r.incomplete, 0);
        assert!(sched.cycles() > 0);
        assert!(sched.epsilon() < eps0, "epsilon must decay with cycles");
        assert!(!sched.memory().is_empty(), "memory must fill");
        assert!(sched.memory().len() <= 2 * 15, "ring bound respected");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(7, 200, 1.0, AdaptiveRlConfig::default());
        let b = run(7, 200, 1.0, AdaptiveRlConfig::default());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_energy, b.total_energy);
    }

    #[test]
    fn ablated_variants_still_complete() {
        for cfg in [
            AdaptiveRlConfig {
                use_shared_memory: false,
                ..Default::default()
            },
            AdaptiveRlConfig {
                use_value_net: false,
                ..Default::default()
            },
            AdaptiveRlConfig {
                use_error_feedback: false,
                ..Default::default()
            },
            AdaptiveRlConfig {
                use_reward_feedback: false,
                ..Default::default()
            },
        ] {
            let r = run(9, 250, 0.8, cfg);
            assert_eq!(r.incomplete, 0, "cfg {cfg:?}");
        }
    }

    #[test]
    fn power_gating_saves_energy_with_a_real_sleep_state() {
        // Give the platform a genuine deep-sleep wattage, run a sparse
        // workload, and compare gated vs ungated energy.
        let mk = |gating: bool| {
            let rng = RngStream::root(17);
            let mut pspec = PlatformSpec::small(2, 3, 4);
            pspec.power.p_sleep = 5.0;
            let platform = Platform::generate(pspec, &rng.derive("p"));
            let mut wspec = workload::WorkloadSpec::paper(120, 2, platform.reference_speed());
            wspec.mean_interarrival = 6.0; // long idle gaps
            let wl = workload::Workload::generate(wspec, &rng.derive("w"));
            let cfg = AdaptiveRlConfig {
                power_gating: gating,
                ..AdaptiveRlConfig::default()
            };
            let mut sched = AdaptiveRl::new(2, cfg);
            ExecEngine::new(ExecConfig::default()).run(platform, wl.tasks, &mut sched)
        };
        let gated = mk(true);
        let ungated = mk(false);
        assert_eq!(gated.incomplete, 0, "gating must never strand tasks");
        assert_eq!(ungated.incomplete, 0);
        assert!(
            gated.total_energy < ungated.total_energy * 0.8,
            "hibernation must pay on sparse load: {} vs {}",
            gated.total_energy,
            ungated.total_energy
        );
    }

    #[test]
    fn power_gating_is_safe_under_heavy_load() {
        let rng = RngStream::root(19);
        let mut pspec = PlatformSpec::small(2, 3, 4);
        pspec.power.p_sleep = 5.0;
        let platform = Platform::generate(pspec, &rng.derive("p"));
        let mut wspec = workload::WorkloadSpec::paper(400, 2, platform.reference_speed());
        wspec.mean_interarrival = 0.4;
        let wl = workload::Workload::generate(wspec, &rng.derive("w"));
        let cfg = AdaptiveRlConfig {
            power_gating: true,
            ..AdaptiveRlConfig::default()
        };
        let mut sched = AdaptiveRl::new(2, cfg);
        let r = ExecEngine::new(ExecConfig::default()).run(platform, wl.tasks, &mut sched);
        assert_eq!(r.incomplete, 0, "outcome {}", r.outcome);
    }

    #[test]
    fn no_rejection_leaks_tasks() {
        // Tiny queues to force rejections; every task must still finish.
        let rng = RngStream::root(11);
        let mut pspec = PlatformSpec::small(1, 2, 4);
        pspec.queue_capacity = 1;
        let platform = Platform::generate(pspec, &rng.derive("p"));
        let mut wspec = WorkloadSpec::paper(300, 1, platform.reference_speed());
        wspec.mean_interarrival = 0.3;
        let wl = Workload::generate(wspec, &rng.derive("w"));
        let mut sched = AdaptiveRl::new(1, AdaptiveRlConfig::default());
        let r = ExecEngine::new(ExecConfig::default()).run(platform, wl.tasks, &mut sched);
        assert_eq!(r.incomplete, 0, "outcome {}", r.outcome);
    }

    #[test]
    fn survives_injected_faults_with_degradation_penalty() {
        use platform::{FaultSpec, TaskOutcome};
        let rng = RngStream::root(23);
        let platform = Platform::generate(PlatformSpec::small(2, 3, 4), &rng.derive("p"));
        let mut wspec = WorkloadSpec::paper(400, 2, platform.reference_speed());
        wspec.mean_interarrival = 0.5;
        let wl = Workload::generate(wspec, &rng.derive("w"));
        let cfg = AdaptiveRlConfig {
            availability_penalty: 2.0,
            ..AdaptiveRlConfig::default()
        };
        let mut sched = AdaptiveRl::new(2, cfg);
        let exec = ExecConfig {
            faults: FaultSpec {
                enabled: true,
                proc_mtbf: 200.0,
                proc_mttr: 25.0,
                node_mtbf: 700.0,
                node_mttr: 50.0,
                permanent_fraction: 0.05,
                horizon: 500.0,
                ..FaultSpec::default()
            },
            ..ExecConfig::default()
        };
        let r = ExecEngine::new(exec).run(platform, wl.tasks, &mut sched);
        assert_eq!(r.outcome, "Drained");
        assert_eq!(r.records.len(), r.num_tasks, "no task may be lost");
        assert_eq!(r.incomplete, 0);
        assert!(r.faults_injected > 0, "the spec must actually inject");
        let failed = r
            .records
            .iter()
            .filter(|x| x.outcome == TaskOutcome::Failed)
            .count();
        assert_eq!(failed, r.tasks_failed);
    }
}
