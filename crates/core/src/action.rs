//! The action space: grouping decisions.
//!
//! §IV.B: "The action refers to a decision to group tasks that are
//! dynamically arriving." An action fixes (a) the merge policy — mixed or
//! identical priority (§IV.D.1) — and (b) the target group size `opnum`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Merge policy selector (the concrete priority class of an identical
/// merge is determined by the tasks themselves at grouping time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Mixed-priority merge: group tasks as they arrive, EDF-sorted.
    Mixed,
    /// Identical-priority merge: group per priority class, EDF-sorted.
    Identical,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::Mixed => write!(f, "mixed"),
            PolicyKind::Identical => write!(f, "identical"),
        }
    }
}

/// One point in the action space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ActionChoice {
    /// Merge policy.
    pub policy: PolicyKind,
    /// Target group size (`opnum`); capped by the node processor count at
    /// dispatch ("the value must not exceed the maximum number of
    /// processors in a node").
    pub opnum: usize,
}

impl ActionChoice {
    /// Enumerates the candidate actions for a site whose largest node has
    /// `max_procs` processors.
    ///
    /// # Panics
    /// Panics if `max_procs == 0`.
    pub fn candidates(max_procs: usize) -> Vec<ActionChoice> {
        let mut out = Vec::with_capacity(max_procs * 2);
        Self::candidates_into(max_procs, &mut out);
        out
    }

    /// [`ActionChoice::candidates`] into a reusable buffer (cleared
    /// first) — the decide hot path re-enumerates per round without
    /// allocating.
    ///
    /// # Panics
    /// Panics if `max_procs == 0`.
    pub fn candidates_into(max_procs: usize, out: &mut Vec<ActionChoice>) {
        assert!(max_procs > 0, "a site must have processors");
        out.clear();
        for opnum in 1..=max_procs {
            out.push(ActionChoice {
                policy: PolicyKind::Mixed,
                opnum,
            });
            out.push(ActionChoice {
                policy: PolicyKind::Identical,
                opnum,
            });
        }
    }

    /// Feature encoding of the action for the value network:
    /// `[opnum / max_procs, is_mixed, is_identical]`.
    pub fn features(&self, max_procs: usize) -> [f64; 3] {
        [
            self.opnum as f64 / max_procs.max(1) as f64,
            f64::from(self.policy == PolicyKind::Mixed),
            f64::from(self.policy == PolicyKind::Identical),
        ]
    }
}

impl fmt::Display for ActionChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}", self.policy, self.opnum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_cover_both_policies_and_all_sizes() {
        let c = ActionChoice::candidates(6);
        assert_eq!(c.len(), 12);
        assert!(c
            .iter()
            .any(|a| a.policy == PolicyKind::Mixed && a.opnum == 1));
        assert!(c
            .iter()
            .any(|a| a.policy == PolicyKind::Identical && a.opnum == 6));
        // No duplicates.
        let mut set = std::collections::HashSet::new();
        assert!(c.iter().all(|a| set.insert(*a)));
    }

    #[test]
    fn features_are_one_hot_and_normalised() {
        let a = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 3,
        };
        assert_eq!(a.features(6), [0.5, 1.0, 0.0]);
        let b = ActionChoice {
            policy: PolicyKind::Identical,
            opnum: 6,
        };
        assert_eq!(b.features(6), [1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "must have processors")]
    fn zero_procs_rejected() {
        let _ = ActionChoice::candidates(0);
    }
}
