//! State observation and featurisation.
//!
//! §IV.B: the agent receives, from each of its nodes, the state vector
//! `S_c(t) = (Load, q⁻, {PP_1…m})`. [`SiteObservation`] aggregates those
//! per-node vectors over one site (one agent's domain) together with the
//! agent's pending-pool composition, and exposes a normalised feature
//! vector for the neural value estimator.

use platform::PlatformView;
use serde::{Deserialize, Serialize};
use workload::{Priority, SiteId, Task};

/// Number of state features produced by [`SiteObservation::features`].
pub const STATE_FEATURES: usize = 8;

/// Aggregated observation of one site at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteObservation {
    /// Mean queued processing weight across the site's nodes (`Load`).
    pub mean_load: f64,
    /// Mean fraction of free queue slots (`q⁻` normalised).
    pub mean_queue_free: f64,
    /// Mean instantaneous processor power as a fraction of the 95 W peak
    /// (`{PP_1…m}` aggregated).
    pub mean_power_frac: f64,
    /// Mean Eq. (2) processing capacity (MIPS).
    pub mean_capacity: f64,
    /// Largest processor count among the site's nodes (caps `opnum`).
    pub max_procs: usize,
    /// Tasks waiting in the agent's pending pool.
    pub pending: usize,
    /// Pending-pool priority composition `[low, medium, high]`.
    pub priority_mix: [f64; 3],
    /// Mean fraction of the site's processors currently online (`1.0` on a
    /// healthy platform; degrades under injected faults). Not part of the
    /// 8-wide feature vector — the paper's state has no failure component —
    /// but exposed so a degradation-aware assignment penalty can use it.
    pub availability: f64,
}

/// Memo slot for the platform-derived half of a [`SiteObservation`] —
/// the per-node scan — keyed by the site's mutation epoch
/// ([`PlatformView::site_epoch`]). While the epoch holds still, the
/// stored means are exactly the f64s a fresh scan of the unchanged node
/// state would produce, so reuse is bit-identical. The pending-pool half
/// (count and priority mix) changes between dispatches and is recomputed
/// on every observation — it costs only one walk of the pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteObsCache {
    /// Epoch the scan below was taken at; `None` until first use.
    key: Option<u64>,
    scan: SiteScan,
}

/// The node-scan aggregates of one site (the cacheable part of
/// [`SiteObservation`]).
#[derive(Debug, Clone, Copy, Default)]
struct SiteScan {
    mean_load: f64,
    mean_queue_free: f64,
    mean_power_frac: f64,
    mean_capacity: f64,
    max_procs: usize,
    availability: f64,
}

impl SiteScan {
    fn observe(view: &PlatformView<'_>, site: SiteId) -> Self {
        let mut n = 0usize;
        let mut load = 0.0;
        let mut qfree = 0.0;
        let mut power = 0.0;
        let mut cap = 0.0;
        let mut max_procs = 0usize;
        let mut avail = 0.0;
        for node in view.site_nodes(site) {
            n += 1;
            load += node.load();
            qfree += node.queue_available() as f64
                / (node.queue_available() + node.queue_len()).max(1) as f64;
            // Cached sum — bit-identical to summing `proc_powers()` in
            // order, without touching the per-proc slice.
            power += node.power_sum() / node.num_processors().max(1) as f64;
            cap += node.processing_capacity();
            max_procs = max_procs.max(node.num_processors());
            avail += node.availability();
        }
        let nf = n.max(1) as f64;
        SiteScan {
            mean_load: load / nf,
            mean_queue_free: qfree / nf,
            mean_power_frac: power / nf / 95.0,
            mean_capacity: cap / nf,
            max_procs,
            availability: avail / nf,
        }
    }
}

impl SiteObservation {
    /// Observes `site` through `view`, with the agent's current pending
    /// pool.
    pub fn observe(view: &PlatformView<'_>, site: SiteId, pending: &[Task]) -> Self {
        Self::assemble(SiteScan::observe(view, site), pending)
    }

    /// [`SiteObservation::observe`] with the node scan memoized in
    /// `cache`: when the site's mutation epoch is unchanged since the
    /// cached scan, the scan is reused bit-for-bit and only the
    /// pending-pool half is recomputed.
    pub fn observe_cached(
        view: &PlatformView<'_>,
        site: SiteId,
        pending: &[Task],
        cache: &mut SiteObsCache,
    ) -> Self {
        let epoch = view.site_epoch(site);
        if cache.key != Some(epoch) {
            *cache = SiteObsCache {
                key: Some(epoch),
                scan: SiteScan::observe(view, site),
            };
        }
        Self::assemble(cache.scan, pending)
    }

    fn assemble(scan: SiteScan, pending: &[Task]) -> Self {
        let mut mix = [0.0; 3];
        for t in pending {
            mix[t.priority.index()] += 1.0;
        }
        if !pending.is_empty() {
            for m in &mut mix {
                *m /= pending.len() as f64;
            }
        }
        SiteObservation {
            mean_load: scan.mean_load,
            mean_queue_free: scan.mean_queue_free,
            mean_power_frac: scan.mean_power_frac,
            mean_capacity: scan.mean_capacity,
            max_procs: scan.max_procs,
            pending: pending.len(),
            priority_mix: mix,
            availability: scan.availability,
        }
    }

    /// Normalised feature vector (every component in `[0, 1]` up to
    /// squashing): `[load, queue_free, power, capacity, pending, low,
    /// medium, high]`.
    pub fn features(&self) -> [f64; STATE_FEATURES] {
        [
            self.mean_load / (1.0 + self.mean_load),
            self.mean_queue_free,
            self.mean_power_frac,
            self.mean_capacity / (1000.0 + self.mean_capacity),
            self.pending as f64 / (10.0 + self.pending as f64),
            self.priority_mix[Priority::Low.index()],
            self.priority_mix[Priority::Medium.index()],
            self.priority_mix[Priority::High.index()],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::{Platform, PlatformSpec};
    use simcore::rng::RngStream;
    use simcore::SimTime;
    use workload::{TaskId, Workload, WorkloadSpec};

    fn sample() -> (Platform, Vec<Task>) {
        let rng = RngStream::root(5);
        let p = Platform::generate(PlatformSpec::small(2, 3, 4), &rng.derive("p"));
        let w = Workload::generate(
            WorkloadSpec::paper(40, 2, p.reference_speed()),
            &rng.derive("w"),
        );
        (p, w.tasks)
    }

    #[test]
    fn observation_of_idle_site() {
        let (p, tasks) = sample();
        let view = PlatformView::new(&p, SimTime::ZERO);
        let site_tasks: Vec<Task> = tasks
            .iter()
            .filter(|t| t.site == SiteId(0))
            .cloned()
            .collect();
        let obs = SiteObservation::observe(&view, SiteId(0), &site_tasks);
        assert_eq!(obs.mean_load, 0.0);
        assert_eq!(obs.mean_queue_free, 1.0);
        assert_eq!(obs.availability, 1.0);
        // Idle draw 48 / 95.
        assert!((obs.mean_power_frac - 48.0 / 95.0).abs() < 1e-9);
        assert_eq!(obs.max_procs, 4);
        assert_eq!(obs.pending, site_tasks.len());
        let mix_sum: f64 = obs.priority_mix.iter().sum();
        assert!((mix_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn features_are_bounded() {
        let (p, tasks) = sample();
        let view = PlatformView::new(&p, SimTime::ZERO);
        let obs = SiteObservation::observe(&view, SiteId(1), &tasks);
        for (i, f) in obs.features().iter().enumerate() {
            assert!((0.0..=1.0).contains(f), "feature {i} = {f}");
        }
        assert_eq!(obs.features().len(), STATE_FEATURES);
    }

    #[test]
    fn empty_pending_mix_is_zero() {
        let (p, _) = sample();
        let view = PlatformView::new(&p, SimTime::ZERO);
        let obs = SiteObservation::observe(&view, SiteId(0), &[]);
        assert_eq!(obs.priority_mix, [0.0; 3]);
        assert_eq!(obs.pending, 0);
    }

    #[test]
    fn pending_mix_counts_priorities() {
        let (p, _) = sample();
        let view = PlatformView::new(&p, SimTime::ZERO);
        let mk = |id: u64, prio: Priority| Task {
            id: TaskId(id),
            size_mi: 1000.0,
            arrival: SimTime::ZERO,
            deadline: SimTime::new(100.0),
            priority: prio,
            site: SiteId(0),
        };
        let pend = vec![
            mk(0, Priority::High),
            mk(1, Priority::High),
            mk(2, Priority::Low),
            mk(3, Priority::Medium),
        ];
        let obs = SiteObservation::observe(&view, SiteId(0), &pend);
        assert_eq!(obs.priority_mix, [0.25, 0.25, 0.5]);
    }
}
