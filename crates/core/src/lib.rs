//! **Adaptive-RL** — the paper's contribution: a dynamic, energy-aware
//! scheduler for heterogeneous PDCSs built on adaptive reinforcement
//! learning and an adaptive task-grouping (TG) technique.
//!
//! One agent resides at each resource site (§III.B). At every decision
//! point an agent:
//!
//! 1. observes the state `S_c(t) = (Load, q⁻, {PP_1…m})` of its nodes,
//! 2. chooses an **action** — a grouping decision (mixed- or
//!    identical-priority merge, and the group size `opnum`) — by ε-greedy
//!    exploration over a neural value estimator (§IV.B, built on the
//!    framework of \[10\]),
//! 3. matches each group to the node whose Eq. (2) processing capacity
//!    best fits the group's Eq. (10) processing weight (minimising the
//!    Eq. (9) error),
//! 4. learns from the two reinforcement feedback signals: the immediate
//!    *error* and the deferred *reward* (deadline hits, Eq. 8), combined
//!    into the learning value `l_val = reward / error` (Eq. 7),
//! 5. records every cycle in the **shared-learning memory** (15 cycles per
//!    agent, §III.B) and — whenever the reward drops below the previous
//!    cycle's — replays the remembered action with the maximum learning
//!    value (§IV.C).
//!
//! The split half of the TG technique (§IV.D.2) is executed by the
//! platform engine (`platform::engine`) and is enabled by default.

#![warn(missing_docs)]

pub mod action;
pub mod agent;
pub mod config;
pub mod feedback;
pub mod grouping;
pub mod memory;
pub mod scheduler;
pub mod state;
pub mod value;

pub use action::{ActionChoice, PolicyKind};
pub use config::AdaptiveRlConfig;
pub use feedback::learning_value;
pub use memory::SharedLearningMemory;
pub use neural::KernelPrecision;
pub use scheduler::AdaptiveRl;
