//! The shared-learning memory.
//!
//! §III.B: "In each resource site, an agent resides and agents in different
//! sites are independent from each other, but they share a long-term memory
//! (shared-learning memory). Each agent is limited to keep and update 15
//! cycles of its learning experiences". §IV.C: when an agent's reward
//! drops, it "immediately checks and learns the actions from the
//! shared-learning memory — considering the action with the maximum
//! learning value".

use crate::action::ActionChoice;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One remembered learning cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Experience {
    /// The agent (site index) that produced it.
    pub agent: u32,
    /// The grouping action taken.
    pub action: ActionChoice,
    /// Eq. (7) learning value observed.
    pub l_val: f64,
    /// Learning-cycle index when recorded.
    pub cycle: u64,
}

/// Bounded per-agent experience rings with cross-agent queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedLearningMemory {
    depth: usize,
    rings: Vec<VecDeque<Experience>>,
}

impl SharedLearningMemory {
    /// Creates a memory for `agents` agents, `depth` cycles each.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(agents: usize, depth: usize) -> Self {
        assert!(agents > 0, "need at least one agent");
        assert!(depth > 0, "memory depth must be positive");
        SharedLearningMemory {
            depth,
            rings: (0..agents)
                .map(|_| VecDeque::with_capacity(depth))
                .collect(),
        }
    }

    /// Records an experience for `agent`, evicting its oldest entry when
    /// the 15-cycle (by default) window is full.
    ///
    /// # Panics
    /// Panics on an out-of-range agent index.
    pub fn record(&mut self, exp: Experience) {
        let ring = &mut self.rings[exp.agent as usize];
        if ring.len() == self.depth {
            ring.pop_front();
        }
        ring.push_back(exp);
    }

    /// The experience with the maximum learning value across *all* agents
    /// — the §IV.C replay rule ("the agent improves its action not only by
    /// learning from its feedback signal, but also from other agents'
    /// experiences").
    pub fn best_shared(&self) -> Option<Experience> {
        self.rings
            .iter()
            .flatten()
            .copied()
            .max_by(|a, b| a.l_val.total_cmp(&b.l_val))
    }

    /// The best experience of a single agent (used when shared access is
    /// ablated away).
    pub fn best_of(&self, agent: u32) -> Option<Experience> {
        self.rings[agent as usize]
            .iter()
            .copied()
            .max_by(|a, b| a.l_val.total_cmp(&b.l_val))
    }

    /// Number of experiences currently held for `agent`.
    pub fn len_of(&self, agent: u32) -> usize {
        self.rings[agent as usize].len()
    }

    /// Total experiences held.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum()
    }

    /// Whether the memory holds no experiences.
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(|r| r.is_empty())
    }

    /// Configured per-agent depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of per-agent rings.
    pub fn num_agents(&self) -> usize {
        self.rings.len()
    }

    /// The experiences of one agent, oldest first (checkpointing replays
    /// them through [`SharedLearningMemory::record`] on restore).
    ///
    /// # Panics
    /// Panics on an out-of-range agent index.
    pub fn iter_of(&self, agent: u32) -> impl Iterator<Item = &Experience> {
        self.rings[agent as usize].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PolicyKind;

    fn exp(agent: u32, opnum: usize, l_val: f64, cycle: u64) -> Experience {
        Experience {
            agent,
            action: ActionChoice {
                policy: PolicyKind::Mixed,
                opnum,
            },
            l_val,
            cycle,
        }
    }

    #[test]
    fn ring_evicts_oldest_beyond_depth() {
        let mut m = SharedLearningMemory::new(1, 15);
        for c in 0..20 {
            m.record(exp(0, 1, c as f64, c));
        }
        assert_eq!(m.len_of(0), 15);
        // Oldest remaining is cycle 5.
        assert!(m.rings[0].iter().all(|e| e.cycle >= 5));
    }

    #[test]
    fn best_shared_crosses_agents() {
        let mut m = SharedLearningMemory::new(3, 15);
        m.record(exp(0, 2, 1.0, 1));
        m.record(exp(1, 4, 9.0, 2));
        m.record(exp(2, 3, 5.0, 3));
        let best = m.best_shared().unwrap();
        assert_eq!(best.agent, 1);
        assert_eq!(best.action.opnum, 4);
    }

    #[test]
    fn best_of_is_agent_local() {
        let mut m = SharedLearningMemory::new(2, 15);
        m.record(exp(0, 2, 1.0, 1));
        m.record(exp(1, 4, 9.0, 2));
        assert_eq!(m.best_of(0).unwrap().l_val, 1.0);
        assert_eq!(m.best_of(1).unwrap().l_val, 9.0);
    }

    #[test]
    fn empty_queries_return_none() {
        let m = SharedLearningMemory::new(2, 5);
        assert!(m.is_empty());
        assert!(m.best_shared().is_none());
        assert!(m.best_of(1).is_none());
        assert_eq!(m.len(), 0);
        assert_eq!(m.depth(), 5);
    }

    #[test]
    fn nan_learning_value_never_panics_selection() {
        // Regression: `max_by(partial_cmp().unwrap())` used to panic the
        // whole run when a diverged learner produced a NaN value. With
        // `total_cmp`, NaN sorts greatest — a poisoned experience wins the
        // query visibly instead of aborting mid-simulation.
        let mut m = SharedLearningMemory::new(2, 15);
        m.record(exp(0, 2, 3.0, 1));
        m.record(exp(1, 4, f64::NAN, 2));
        m.record(exp(1, 5, 7.0, 3));
        let best = m.best_shared().expect("selection must not panic");
        assert!(best.l_val.is_nan());
        assert!(m.best_of(0).unwrap().l_val == 3.0);
        assert!(m.best_of(1).unwrap().l_val.is_nan());
    }

    #[test]
    fn eviction_can_drop_the_maximum() {
        // The window is *recency*-bounded, not value-bounded: a stale peak
        // falls out after `depth` newer cycles.
        let mut m = SharedLearningMemory::new(1, 3);
        m.record(exp(0, 6, 100.0, 1));
        for c in 2..=4 {
            m.record(exp(0, 1, 1.0, c));
        }
        assert_eq!(m.best_shared().unwrap().l_val, 1.0);
    }
}
