//! The per-site scheduling agent.
//!
//! Owns the site's pending pool and the action-selection logic: ε-greedy
//! trial-and-error over the value estimator, overridden by the §IV.C
//! memory-replay rule whenever the reward signal drops ("if it is
//! determined that the reward is decreased, the agent immediately checks
//! and learns the actions from the shared-learning memory — considering
//! the action with the maximum learning value").

use crate::action::ActionChoice;
use crate::memory::SharedLearningMemory;
use crate::state::SiteObservation;
use crate::value::ValueEstimator;
use simcore::rng::RngStream;
use workload::{SiteId, Task};

/// One scheduling agent (one per resource site).
#[derive(Debug)]
pub struct Agent {
    /// The site this agent manages.
    pub site: SiteId,
    /// Tasks awaiting grouping.
    pub pending: Vec<Task>,
    /// Success fraction (`reward / opnum`) of the agent's previous cycle.
    pub last_success: Option<f64>,
    /// Set when the reward dropped; cleared after one memory replay.
    pub consult_memory: bool,
    rng: RngStream,
}

/// How an action was selected (exposed for tests and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceSource {
    /// Replayed from the shared-learning memory (reward-drop rule).
    MemoryReplay,
    /// Uniform exploration.
    Explore,
    /// Greedy exploitation of the value estimator.
    Exploit,
}

impl Agent {
    /// Creates an idle agent.
    pub fn new(site: SiteId, rng: RngStream) -> Self {
        Agent {
            site,
            pending: Vec::new(),
            last_success: None,
            consult_memory: false,
            rng,
        }
    }

    /// Buffers newly arrived (or bounced) tasks.
    pub fn buffer(&mut self, tasks: Vec<Task>) {
        self.pending.extend(tasks);
    }

    /// The cheap (non-neural) part of action selection: resolves the
    /// memory-replay and exploration branches immediately and defers
    /// value-net exploitation to the caller, returning `(None, Exploit)`.
    ///
    /// Splitting selection this way lets the scheduler stage every
    /// exploiting site's candidates into one batched scoring pass. It
    /// cannot perturb decisions: each agent draws from its own private RNG
    /// stream, and the memory/ε branches consume exactly the draws they
    /// would in the combined formulation.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn decide(
        &mut self,
        candidates: &[ActionChoice],
        epsilon: f64,
        have_value: bool,
        memory: &SharedLearningMemory,
        shared: bool,
        max_procs: usize,
    ) -> (Option<ActionChoice>, ChoiceSource) {
        assert!(!candidates.is_empty(), "need candidate actions");
        if self.consult_memory {
            self.consult_memory = false;
            let best = if shared {
                memory.best_shared()
            } else {
                memory.best_of(self.site.0)
            };
            if let Some(exp) = best {
                let mut action = exp.action;
                // "the value must not exceed the maximum number of
                // processors in a node" — clamp remembered opnums drawn
                // from sites with bigger nodes.
                action.opnum = action.opnum.min(max_procs).max(1);
                return (Some(action), ChoiceSource::MemoryReplay);
            }
        }
        if self.rng.chance(epsilon) {
            let pick = self.rng.pick(candidates.len());
            return (Some(candidates[pick]), ChoiceSource::Explore);
        }
        if have_value {
            (None, ChoiceSource::Exploit)
        } else {
            let pick = self.rng.pick(candidates.len());
            (Some(candidates[pick]), ChoiceSource::Explore)
        }
    }

    /// Chooses a grouping action.
    ///
    /// Order of precedence:
    /// 1. memory replay when the reward dropped (and the memory is
    ///    non-empty) — shared across agents unless `shared` is false,
    /// 2. uniform exploration with probability `epsilon`,
    /// 3. greedy exploitation of the estimator (or uniform if `value` is
    ///    `None`, the value-net ablation).
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn choose_action(
        &mut self,
        obs: &SiteObservation,
        candidates: &[ActionChoice],
        epsilon: f64,
        value: Option<&mut ValueEstimator>,
        memory: &SharedLearningMemory,
        shared: bool,
        max_procs: usize,
    ) -> (ActionChoice, ChoiceSource) {
        match self.decide(
            candidates,
            epsilon,
            value.is_some(),
            memory,
            shared,
            max_procs,
        ) {
            (Some(action), src) => (action, src),
            (None, src) => {
                let v = value.expect("decide defers only when a value net exists");
                (v.best_action(obs, candidates), src)
            }
        }
    }

    /// The agent's exploration RNG (checkpointing reads its seed/state).
    pub fn rng(&self) -> &RngStream {
        &self.rng
    }

    /// Replaces the exploration RNG with one rebuilt from a checkpoint.
    pub fn set_rng(&mut self, rng: RngStream) {
        self.rng = rng;
    }

    /// Feeds back the success fraction of a completed cycle; arms the
    /// memory-replay rule when it dropped below the previous cycle's.
    pub fn note_reward(&mut self, success: f64) {
        if let Some(prev) = self.last_success {
            if success < prev {
                self.consult_memory = true;
            }
        }
        self.last_success = Some(success);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PolicyKind;
    use crate::memory::Experience;

    fn obs(max_procs: usize) -> SiteObservation {
        SiteObservation {
            mean_load: 1.0,
            mean_queue_free: 0.8,
            mean_power_frac: 0.5,
            mean_capacity: 2000.0,
            max_procs,
            pending: 5,
            priority_mix: [0.2, 0.5, 0.3],
            availability: 1.0,
        }
    }

    fn agent() -> Agent {
        Agent::new(SiteId(0), RngStream::root(1).derive("agent"))
    }

    #[test]
    fn reward_drop_arms_memory_replay() {
        let mut a = agent();
        a.note_reward(0.9);
        assert!(!a.consult_memory);
        a.note_reward(0.5);
        assert!(a.consult_memory);
        a.note_reward(0.7);
        // Improvement does not arm it again.
        a.note_reward(0.8);
        assert!(a.consult_memory, "flag persists until consumed");
    }

    #[test]
    fn memory_replay_returns_best_remembered_action() {
        let mut a = agent();
        let mut mem = SharedLearningMemory::new(2, 15);
        mem.record(Experience {
            agent: 1,
            action: ActionChoice {
                policy: PolicyKind::Identical,
                opnum: 6,
            },
            l_val: 50.0,
            cycle: 1,
        });
        a.consult_memory = true;
        let cands = ActionChoice::candidates(4);
        let (action, src) = a.choose_action(&obs(4), &cands, 0.0, None, &mem, true, 4);
        assert_eq!(src, ChoiceSource::MemoryReplay);
        assert_eq!(action.policy, PolicyKind::Identical);
        // Remembered opnum 6 clamped to this site's max of 4.
        assert_eq!(action.opnum, 4);
        assert!(!a.consult_memory, "flag consumed");
    }

    #[test]
    fn private_memory_ignores_other_agents() {
        let mut a = agent();
        let mut mem = SharedLearningMemory::new(2, 15);
        mem.record(Experience {
            agent: 1,
            action: ActionChoice {
                policy: PolicyKind::Identical,
                opnum: 3,
            },
            l_val: 50.0,
            cycle: 1,
        });
        a.consult_memory = true;
        let cands = ActionChoice::candidates(4);
        // Agent 0's private ring is empty: falls through to exploration.
        let (_, src) = a.choose_action(&obs(4), &cands, 1.0, None, &mem, false, 4);
        assert_eq!(src, ChoiceSource::Explore);
    }

    #[test]
    fn epsilon_one_always_explores() {
        let mut a = agent();
        let mem = SharedLearningMemory::new(1, 15);
        let cands = ActionChoice::candidates(4);
        for _ in 0..20 {
            let (_, src) = a.choose_action(&obs(4), &cands, 1.0, None, &mem, true, 4);
            assert_eq!(src, ChoiceSource::Explore);
        }
    }

    #[test]
    fn exploitation_uses_the_estimator() {
        let mut a = agent();
        let mem = SharedLearningMemory::new(1, 15);
        let mut v = ValueEstimator::new(6, 0.05, 0.5, 11);
        let o = obs(4);
        let good = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 4,
        };
        for c in ActionChoice::candidates(4) {
            let target = if c == good { 0.95 } else { 0.05 };
            for _ in 0..200 {
                v.train(&o, c, target);
            }
        }
        let cands = ActionChoice::candidates(4);
        let (action, src) = a.choose_action(&o, &cands, 0.0, Some(&mut v), &mem, true, 4);
        assert_eq!(src, ChoiceSource::Exploit);
        assert_eq!(action, good);
    }

    #[test]
    fn buffer_accumulates() {
        let mut a = agent();
        assert!(a.pending.is_empty());
        a.buffer(vec![]);
        assert!(a.pending.is_empty());
    }
}
