//! The merge half of the adaptive TG technique (§IV.D.1).
//!
//! Given the agent's pending pool and the chosen [`ActionChoice`], forms
//! task groups:
//!
//! * **Mixed-priority** — pending tasks EDF-sorted then chunked into groups
//!   of `opnum`; everything (including a final partial chunk) is released
//!   immediately ("since tasks are merged into a group as they arrive,
//!   there is no delay in grouping decisions"),
//! * **Identical-priority** — tasks partitioned by class, EDF-sorted,
//!   chunked into groups of `opnum`; a final *partial* chunk is held back
//!   until it either fills up or its oldest member has waited `flush_age`
//!   (the paper notes this policy's accuracy comes at the price of
//!   possible grouping delays).
//!
//! The split half of the TG technique lives in the platform engine.

use crate::action::{ActionChoice, PolicyKind};
use platform::GroupPolicy;
use simcore::time::SimTime;
use workload::{Priority, Task};

/// A formed group ready to dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedGroup {
    /// Member tasks (EDF order).
    pub tasks: Vec<Task>,
    /// The policy tag carried to the platform.
    pub policy: GroupPolicy,
}

/// Forms groups from `pending` under `action`, removing the grouped tasks
/// from `pending`. Tasks left in `pending` were held back by the
/// identical-priority partial-chunk rule.
pub fn merge(
    pending: &mut Vec<Task>,
    action: ActionChoice,
    now: SimTime,
    flush_age: f64,
) -> Vec<MergedGroup> {
    debug_assert!(action.opnum > 0, "opnum must be positive");
    if pending.is_empty() {
        return Vec::new();
    }
    match action.policy {
        PolicyKind::Mixed => {
            let mut tasks = std::mem::take(pending);
            tasks.sort_by(|a, b| a.deadline.cmp(&b.deadline).then(a.id.cmp(&b.id)));
            tasks
                .chunks(action.opnum)
                .map(|chunk| MergedGroup {
                    tasks: chunk.to_vec(),
                    policy: GroupPolicy::Mixed,
                })
                .collect()
        }
        PolicyKind::Identical => {
            let mut out = Vec::new();
            let mut kept = Vec::new();
            for prio in Priority::ALL {
                let mut class: Vec<Task> = pending
                    .iter()
                    .filter(|t| t.priority == prio)
                    .cloned()
                    .collect();
                if class.is_empty() {
                    continue;
                }
                class.sort_by(|a, b| a.deadline.cmp(&b.deadline).then(a.id.cmp(&b.id)));
                let mut iter = class.chunks(action.opnum).peekable();
                while let Some(chunk) = iter.next() {
                    let is_partial = chunk.len() < action.opnum && iter.peek().is_none();
                    if is_partial {
                        let oldest_wait = chunk
                            .iter()
                            .map(|t| now.since(t.arrival).as_f64())
                            .fold(0.0, f64::max);
                        if oldest_wait < flush_age {
                            kept.extend_from_slice(chunk);
                            continue;
                        }
                    }
                    out.push(MergedGroup {
                        tasks: chunk.to_vec(),
                        policy: GroupPolicy::Identical(prio),
                    });
                }
            }
            *pending = kept;
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{SiteId, TaskId};

    fn task(id: u64, arrival: f64, deadline: f64, prio: Priority) -> Task {
        Task {
            id: TaskId(id),
            size_mi: 1000.0,
            arrival: SimTime::new(arrival),
            deadline: SimTime::new(deadline),
            priority: prio,
            site: SiteId(0),
        }
    }

    fn mixed(opnum: usize) -> ActionChoice {
        ActionChoice {
            policy: PolicyKind::Mixed,
            opnum,
        }
    }

    fn identical(opnum: usize) -> ActionChoice {
        ActionChoice {
            policy: PolicyKind::Identical,
            opnum,
        }
    }

    #[test]
    fn mixed_merge_releases_everything_edf_sorted() {
        let mut pending = vec![
            task(1, 0.0, 30.0, Priority::Low),
            task(2, 0.0, 10.0, Priority::High),
            task(3, 0.0, 20.0, Priority::Medium),
            task(4, 0.0, 5.0, Priority::High),
            task(5, 0.0, 25.0, Priority::Low),
        ];
        let groups = merge(&mut pending, mixed(2), SimTime::new(1.0), 10.0);
        assert!(pending.is_empty(), "mixed merge has no grouping delay");
        assert_eq!(groups.len(), 3);
        // Global EDF order chunked: [4,2], [3,5], [1].
        let ids: Vec<Vec<u64>> = groups
            .iter()
            .map(|g| g.tasks.iter().map(|t| t.id.0).collect())
            .collect();
        assert_eq!(ids, vec![vec![4, 2], vec![3, 5], vec![1]]);
        assert!(groups.iter().all(|g| g.policy == GroupPolicy::Mixed));
    }

    #[test]
    fn identical_merge_partitions_by_class() {
        let mut pending = vec![
            task(1, 0.0, 30.0, Priority::Low),
            task(2, 0.0, 10.0, Priority::High),
            task(3, 0.0, 20.0, Priority::High),
            task(4, 0.0, 5.0, Priority::Low),
        ];
        // opnum 2, both classes form exactly one full group each.
        let groups = merge(&mut pending, identical(2), SimTime::new(1.0), 10.0);
        assert!(pending.is_empty());
        assert_eq!(groups.len(), 2);
        for g in &groups {
            match g.policy {
                GroupPolicy::Identical(p) => assert!(g.tasks.iter().all(|t| t.priority == p)),
                GroupPolicy::Mixed => panic!("unexpected mixed group"),
            }
        }
    }

    #[test]
    fn identical_partial_chunks_are_held_until_flush_age() {
        let mut pending = vec![
            task(1, 0.0, 10.0, Priority::High),
            task(2, 0.0, 12.0, Priority::High),
            task(3, 0.0, 14.0, Priority::High),
        ];
        // opnum 2: one full group, one partial of 1 held (age 1 < 10).
        let groups = merge(&mut pending, identical(2), SimTime::new(1.0), 10.0);
        assert_eq!(groups.len(), 1);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id.0, 3);
        // At age 20 the straggler flushes.
        let groups2 = merge(&mut pending, identical(2), SimTime::new(20.0), 10.0);
        assert_eq!(groups2.len(), 1);
        assert_eq!(groups2[0].tasks.len(), 1);
        assert!(pending.is_empty());
    }

    #[test]
    fn empty_pending_yields_nothing() {
        let mut pending = Vec::new();
        assert!(merge(&mut pending, mixed(4), SimTime::ZERO, 10.0).is_empty());
    }

    #[test]
    fn opnum_one_degenerates_to_singletons() {
        let mut pending = vec![
            task(1, 0.0, 10.0, Priority::High),
            task(2, 0.0, 5.0, Priority::Low),
        ];
        let groups = merge(&mut pending, mixed(1), SimTime::ZERO, 10.0);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.tasks.len() == 1));
        // EDF across the pool: task 2 first.
        assert_eq!(groups[0].tasks[0].id.0, 2);
    }

    #[test]
    fn grouped_plus_kept_equals_input() {
        let mut pending: Vec<Task> = (0..17)
            .map(|i| {
                let prio = match i % 3 {
                    0 => Priority::Low,
                    1 => Priority::Medium,
                    _ => Priority::High,
                };
                task(i, 0.0, 10.0 + i as f64, prio)
            })
            .collect();
        let before = pending.len();
        let groups = merge(&mut pending, identical(4), SimTime::new(2.0), 10.0);
        let grouped: usize = groups.iter().map(|g| g.tasks.len()).sum();
        assert_eq!(
            grouped + pending.len(),
            before,
            "no task lost or duplicated"
        );
    }
}
