//! The learning value (Eq. 7) and its normalised training target.
//!
//! §IV.B: "each action incorporates with a learning value
//! `l_val = reward / error`", where the reward counts deadline hits
//! (Eq. 8) and the error measures the pw-to-capacity mismatch (Eq. 9).
//! A null error is explicitly favourable, so the raw ratio is unbounded;
//! we floor the denominator and additionally expose a squashed target in
//! `[0, 1]` for the neural estimator.

/// Eq. (7): `l_val = reward / max(error, floor)`.
///
/// # Panics
/// Panics if `floor` is not strictly positive.
pub fn learning_value(reward: u32, error: f64, floor: f64) -> f64 {
    assert!(floor > 0.0, "error floor must be positive");
    f64::from(reward) / error.max(floor)
}

/// Bounded training target for the value network: the deadline-hit
/// fraction discounted by the assignment error,
/// `(reward / size) / (1 + error) ∈ [0, 1]`.
///
/// # Panics
/// Panics if `size == 0` or `error < 0`.
pub fn value_target(reward: u32, size: usize, error: f64) -> f64 {
    assert!(size > 0, "group size must be positive");
    assert!(error >= 0.0, "error must be non-negative");
    (f64::from(reward) / size as f64) / (1.0 + error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lval_rises_with_reward_and_falls_with_error() {
        assert!(learning_value(4, 0.5, 0.05) > learning_value(2, 0.5, 0.05));
        assert!(learning_value(4, 0.1, 0.05) > learning_value(4, 0.5, 0.05));
    }

    #[test]
    fn null_error_is_floored_not_infinite() {
        let v = learning_value(3, 0.0, 0.05);
        assert!(v.is_finite());
        assert_eq!(v, 60.0);
    }

    #[test]
    fn target_is_bounded() {
        for reward in 0..=4u32 {
            for &err in &[0.0, 0.3, 2.0, 50.0] {
                let t = value_target(reward, 4, err);
                assert!((0.0..=1.0).contains(&t), "target {t}");
            }
        }
        assert_eq!(value_target(4, 4, 0.0), 1.0);
        assert_eq!(value_target(0, 4, 0.0), 0.0);
    }

    #[test]
    fn target_orders_like_lval() {
        // Better reward and lower error both raise the target.
        assert!(value_target(4, 4, 0.1) > value_target(2, 4, 0.1));
        assert!(value_target(4, 4, 0.1) > value_target(4, 4, 1.0));
    }

    #[test]
    #[should_panic(expected = "floor must be positive")]
    fn zero_floor_rejected() {
        let _ = learning_value(1, 0.1, 0.0);
    }
}
