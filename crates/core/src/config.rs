//! Adaptive-RL hyper-parameters.

use crate::action::PolicyKind;
use neural::KernelPrecision;
use serde::{Deserialize, Serialize};

/// Configuration of the Adaptive-RL scheduler.
///
/// The `use_*` switches exist for the ablation studies called out in
/// DESIGN.md; the paper's full algorithm has all of them on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveRlConfig {
    /// Initial exploration probability.
    pub epsilon0: f64,
    /// Multiplicative ε decay applied per learning cycle.
    pub epsilon_decay: f64,
    /// Exploration floor.
    pub epsilon_floor: f64,
    /// Value-network learning rate.
    pub lr: f64,
    /// Value-network momentum.
    pub momentum: f64,
    /// Hidden width of the value network.
    pub hidden: usize,
    /// Shared-learning-memory depth per agent (§III.B: 15 cycles).
    pub memory_depth: usize,
    /// Floor applied to the Eq. (9) error before dividing in Eq. (7)
    /// (a null error is "favorable"; the floor keeps `l_val` finite).
    pub error_floor: f64,
    /// Maximum time a partial identical-priority group may wait before
    /// being flushed as a smaller group.
    pub flush_age: f64,
    /// Whether agents read each other's experience via the shared memory
    /// (ablation: `false` = private memories only).
    pub use_shared_memory: bool,
    /// Whether the neural value estimator drives exploitation (ablation:
    /// `false` = uniform choice among candidate actions).
    pub use_value_net: bool,
    /// Whether the Eq. (9) error feedback drives node selection (ablation:
    /// `false` = pick the node with the most free queue slots).
    pub use_error_feedback: bool,
    /// Whether the Eq. (8) reward feedback trains the estimator and drives
    /// the memory-replay rule (ablation).
    pub use_reward_feedback: bool,
    /// RNG seed for exploration and tie-breaking.
    pub seed: u64,
    /// Forces every action to one merge policy (ablation of the adaptive
    /// mixed-versus-identical choice). `None` = adaptive (the paper).
    pub force_policy: Option<PolicyKind>,
    /// **Extension (off by default):** power-gate idle processors.
    ///
    /// §II surveys resource hibernation as an energy-saving technique the
    /// paper's own scheduler does not use. With this switch the agent puts
    /// processors of fully drained nodes to sleep whenever its pending
    /// pool is empty; the engine auto-wakes them (paying the wake latency
    /// and inrush) when work arrives. Only worthwhile on platforms whose
    /// `PowerParams::p_sleep` is genuinely below idle draw — under the
    /// paper's Eq. (5) model (`p_sleep = p_idle`) it can only lose.
    pub power_gating: bool,
    /// **Extension (0 = off, the paper's behaviour):** degradation-aware
    /// placement under injected faults. Adds
    /// `availability_penalty × (1 − availability)` to a node's Eq. (9)
    /// assignment error, steering groups away from nodes that have lost
    /// processors (and are therefore both slower and likelier to strand
    /// work again). Irrelevant on a healthy platform, where every node's
    /// availability is 1.
    pub availability_penalty: f64,
    /// Kernel precision of the neural value path. `F64` (default) is
    /// bit-reproducible and pinned by the golden tests; `F32` selects the
    /// vectorization-friendly kernel set and requires the `f32-kernels`
    /// cargo feature.
    #[serde(default)]
    pub precision: KernelPrecision,
}

impl Default for AdaptiveRlConfig {
    fn default() -> Self {
        AdaptiveRlConfig {
            epsilon0: 0.5,
            epsilon_decay: 0.995,
            epsilon_floor: 0.02,
            lr: 0.05,
            momentum: 0.5,
            hidden: 8,
            memory_depth: 15,
            error_floor: 0.05,
            flush_age: 10.0,
            use_shared_memory: true,
            use_value_net: true,
            use_error_feedback: true,
            use_reward_feedback: true,
            seed: 0x5EED,
            force_policy: None,
            power_gating: false,
            availability_penalty: 0.0,
            precision: KernelPrecision::F64,
        }
    }
}

impl AdaptiveRlConfig {
    /// Validates hyper-parameter ranges.
    ///
    /// # Panics
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.epsilon0),
            "epsilon0 must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.epsilon_decay),
            "epsilon_decay must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.epsilon_floor) && self.epsilon_floor <= self.epsilon0,
            "epsilon_floor must be in [0, epsilon0]"
        );
        assert!(self.lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.momentum),
            "momentum must be in [0, 1)"
        );
        assert!(self.hidden > 0, "hidden width must be positive");
        assert!(self.memory_depth > 0, "memory depth must be positive");
        assert!(self.error_floor > 0.0, "error floor must be positive");
        assert!(self.flush_age >= 0.0, "flush age must be non-negative");
        assert!(
            self.availability_penalty >= 0.0,
            "availability penalty must be non-negative"
        );
        assert!(
            self.precision.available(),
            "precision {} requires kernels not compiled into this build \
             (rebuild with `--features f32-kernels`)",
            self.precision.label()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = AdaptiveRlConfig::default();
        c.validate();
        assert_eq!(c.memory_depth, 15, "§III.B fixes the memory at 15 cycles");
        assert!(c.use_shared_memory && c.use_value_net);
    }

    #[test]
    #[should_panic(expected = "epsilon0")]
    fn bad_epsilon_rejected() {
        let c = AdaptiveRlConfig {
            epsilon0: 1.5,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "memory depth")]
    fn zero_memory_rejected() {
        let c = AdaptiveRlConfig {
            memory_depth: 0,
            ..Default::default()
        };
        c.validate();
    }
}
