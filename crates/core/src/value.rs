//! The neural value estimator.
//!
//! Predicts the normalised learning value of taking a grouping action in a
//! given site state — the function-approximation role the paper assigns to
//! the neural-network structure of \[10\]. Trained online: one SGD step per
//! completed learning cycle.
//!
//! The estimator owns a reusable [`neural::Workspace`] plus candidate
//! scratch buffers, so `predict`/`train`/`best_action` are allocation-free
//! after the first call. Candidate scoring is batched: callers either use
//! [`ValueEstimator::best_action`] directly, or — as the scheduler's
//! dispatch loop does — stage *every* site's candidate rows via
//! [`ValueEstimator::begin_batch`]/[`ValueEstimator::push_candidates`] and
//! resolve them all through one [`ValueEstimator::score_batch`] pass
//! followed by per-range [`ValueEstimator::argmax_in`] calls. The argmax
//! keeps `max_by`'s tie rule (the *last* maximal element wins) in both
//! precisions.
//!
//! # Kernel precision
//!
//! The estimator runs on either the reference f64 kernels (default,
//! bit-reproducible, pinned by goldens) or — behind the `f32-kernels`
//! cargo feature — the vectorization-friendly f32 kernel set
//! ([`neural::MlpF32`]). Both start from the identical initialisation, and
//! the checkpoint surface is f64 in both modes (`f32 → f64` widening is
//! exact, so f32 runs resume bit-exactly too).

use crate::action::ActionChoice;
use crate::state::{SiteObservation, STATE_FEATURES};
use neural::{Activation, KernelPrecision, Mlp, Sgd, Workspace};
#[cfg(feature = "f32-kernels")]
use neural::{MlpF32, WorkspaceF32};

/// Width of the estimator's input: state features plus action features.
pub const INPUT_WIDTH: usize = STATE_FEATURES + 3;

/// The active kernel set: exactly one precision is live per estimator.
#[derive(Debug, Clone)]
enum Kernel {
    F64(Mlp),
    #[cfg(feature = "f32-kernels")]
    F32(MlpF32),
}

/// Value estimator: `(state, action) → expected normalised l_val`.
#[derive(Debug, Clone)]
pub struct ValueEstimator {
    kernel: Kernel,
    /// Reusable forward/backward scratch (f64 kernels).
    ws: Workspace,
    /// Reusable forward/backward scratch (f32 kernels).
    #[cfg(feature = "f32-kernels")]
    ws32: WorkspaceF32,
    /// Candidate encoding matrix, one `INPUT_WIDTH` row per candidate.
    enc: Vec<f64>,
    /// f32 mirror of the encoding matrix.
    #[cfg(feature = "f32-kernels")]
    enc32: Vec<f32>,
    /// Candidate scores, parallel to the encoded rows (always f64: f32
    /// scores are widened so the argmax has a single code path).
    scores: Vec<f64>,
    /// f32 score scratch.
    #[cfg(feature = "f32-kernels")]
    scores32: Vec<f32>,
}

impl ValueEstimator {
    /// Creates an estimator with one hidden layer of `hidden` units on the
    /// default (f64) kernels.
    pub fn new(hidden: usize, lr: f64, momentum: f64, seed: u64) -> Self {
        Self::with_precision(hidden, lr, momentum, seed, KernelPrecision::F64)
    }

    /// Creates an estimator on the requested kernel precision. Both
    /// precisions derive from the identical f64 Xavier initialisation.
    ///
    /// # Panics
    /// Panics when `precision` names kernels not compiled into this build
    /// (`F32` without the `f32-kernels` cargo feature).
    pub fn with_precision(
        hidden: usize,
        lr: f64,
        momentum: f64,
        seed: u64,
        precision: KernelPrecision,
    ) -> Self {
        let net = Mlp::new(
            &[INPUT_WIDTH, hidden, 1],
            Activation::Tanh,
            Sgd::new(lr, momentum),
            seed,
        );
        let kernel = match precision {
            KernelPrecision::F64 => Kernel::F64(net),
            #[cfg(feature = "f32-kernels")]
            KernelPrecision::F32 => Kernel::F32(MlpF32::from_f64(&net)),
            #[cfg(not(feature = "f32-kernels"))]
            KernelPrecision::F32 => panic!(
                "f32 kernels are not compiled into this build; \
                 rebuild with `--features f32-kernels`"
            ),
        };
        ValueEstimator {
            kernel,
            ws: Workspace::default(),
            #[cfg(feature = "f32-kernels")]
            ws32: WorkspaceF32::default(),
            enc: Vec::new(),
            #[cfg(feature = "f32-kernels")]
            enc32: Vec::new(),
            scores: Vec::new(),
            #[cfg(feature = "f32-kernels")]
            scores32: Vec::new(),
        }
    }

    /// The kernel precision this estimator runs on.
    pub fn precision(&self) -> KernelPrecision {
        match &self.kernel {
            Kernel::F64(_) => KernelPrecision::F64,
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(_) => KernelPrecision::F32,
        }
    }

    fn encode(obs: &SiteObservation, action: ActionChoice) -> [f64; INPUT_WIDTH] {
        let mut input = [0.0; INPUT_WIDTH];
        input[..STATE_FEATURES].copy_from_slice(&obs.features());
        input[STATE_FEATURES..].copy_from_slice(&action.features(obs.max_procs));
        input
    }

    /// Predicted normalised learning value of `action` in `obs`.
    pub fn predict(&mut self, obs: &SiteObservation, action: ActionChoice) -> f64 {
        let input = Self::encode(obs, action);
        match &mut self.kernel {
            Kernel::F64(net) => net.predict_scalar_into(&input, &mut self.ws),
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(net) => {
                let mut input32 = [0.0f32; INPUT_WIDTH];
                for (dst, &src) in input32.iter_mut().zip(&input) {
                    *dst = src as f32;
                }
                f64::from(net.predict_scalar_into(&input32, &mut self.ws32))
            }
        }
    }

    /// One online training step toward the observed normalised target;
    /// returns the pre-update squared error.
    pub fn train(&mut self, obs: &SiteObservation, action: ActionChoice, target: f64) -> f64 {
        let input = Self::encode(obs, action);
        match &mut self.kernel {
            Kernel::F64(net) => net.train_step(&input, &[target], &mut self.ws),
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(net) => {
                let mut input32 = [0.0f32; INPUT_WIDTH];
                for (dst, &src) in input32.iter_mut().zip(&input) {
                    *dst = src as f32;
                }
                net.train_step(&input32, &[target as f32], &mut self.ws32)
            }
        }
    }

    /// Starts a fresh scoring batch, discarding previously staged rows.
    pub fn begin_batch(&mut self) {
        self.enc.clear();
        #[cfg(feature = "f32-kernels")]
        self.enc32.clear();
    }

    /// Number of candidate rows currently staged.
    pub fn batch_rows(&self) -> usize {
        #[cfg(feature = "f32-kernels")]
        if matches!(self.kernel, Kernel::F32(_)) {
            return self.enc32.len() / INPUT_WIDTH;
        }
        self.enc.len() / INPUT_WIDTH
    }

    /// Stages every candidate of one decision into the batch matrix;
    /// returns the starting row index for [`ValueEstimator::argmax_in`].
    pub fn push_candidates(&mut self, obs: &SiteObservation, candidates: &[ActionChoice]) -> usize {
        let start = self.batch_rows();
        // Every candidate row shares the observation's state features —
        // compute them once per site instead of once per row (the values,
        // and therefore the staged rows, are bit-identical either way).
        let state = obs.features();
        match &self.kernel {
            Kernel::F64(_) => {
                for &c in candidates {
                    self.enc.extend_from_slice(&state);
                    self.enc.extend_from_slice(&c.features(obs.max_procs));
                }
            }
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(_) => {
                let mut state32 = [0.0f32; STATE_FEATURES];
                for (dst, &src) in state32.iter_mut().zip(&state) {
                    *dst = src as f32;
                }
                for &c in candidates {
                    self.enc32.extend_from_slice(&state32);
                    self.enc32
                        .extend(c.features(obs.max_procs).iter().map(|&v| v as f32));
                }
            }
        }
        start
    }

    /// Scores every staged row in one batched kernel pass. f32 scores are
    /// widened into the shared f64 score buffer.
    pub fn score_batch(&mut self) {
        match &mut self.kernel {
            Kernel::F64(net) => net.score_into(&self.enc, &mut self.scores, &mut self.ws),
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(net) => {
                net.score_into(&self.enc32, &mut self.scores32, &mut self.ws32);
                self.scores.clear();
                self.scores
                    .extend(self.scores32.iter().map(|&s| f64::from(s)));
            }
        }
    }

    /// Argmax over the scored rows `[start, start + len)` of the last
    /// [`ValueEstimator::score_batch`], as an offset into that range.
    /// Replicates `Iterator::max_by`'s keep-the-last-maximum tie rule.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn argmax_in(&self, start: usize, len: usize) -> usize {
        use std::cmp::Ordering;
        assert!(len > 0, "need at least one candidate action");
        let scores = &self.scores[start..start + len];
        let mut best = 0usize;
        for (i, s) in scores.iter().enumerate().skip(1) {
            if s.total_cmp(&scores[best]) != Ordering::Less {
                best = i;
            }
        }
        best
    }

    /// The action among `candidates` with the highest predicted value.
    ///
    /// Single-decision convenience over the batch API: encodes all
    /// candidates, scores them in one pass, and takes the cached-score
    /// argmax (bit-identical to the pairwise `max_by` formulation).
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn best_action(
        &mut self,
        obs: &SiteObservation,
        candidates: &[ActionChoice],
    ) -> ActionChoice {
        assert!(!candidates.is_empty(), "need at least one candidate action");
        self.begin_batch();
        let start = self.push_candidates(obs, candidates);
        self.score_batch();
        candidates[self.argmax_in(start, candidates.len())]
    }

    /// Training steps taken so far.
    pub fn steps(&self) -> u64 {
        match &self.kernel {
            Kernel::F64(net) => net.steps(),
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(net) => net.steps(),
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        match &self.kernel {
            Kernel::F64(net) => net.param_count(),
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(net) => net.param_count(),
        }
    }

    /// Captures the network's training state for a checkpoint as f64
    /// buffers (exact in both precisions) and returns the step count.
    pub fn snapshot_into(&self, params: &mut Vec<f64>, velocity: &mut Vec<f64>) -> u64 {
        match &self.kernel {
            Kernel::F64(net) => {
                params.clear();
                params.extend_from_slice(net.params());
                velocity.clear();
                velocity.extend_from_slice(net.velocity());
                net.steps()
            }
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(net) => {
                net.params_f64_into(params);
                net.velocity_f64_into(velocity);
                net.steps()
            }
        }
    }

    /// Restores the training state captured by
    /// [`ValueEstimator::snapshot_into`]. Returns `false` (leaving the
    /// estimator untouched) on an architecture mismatch.
    pub fn restore_snapshot(&mut self, params: &[f64], velocity: &[f64], steps: u64) -> bool {
        match &mut self.kernel {
            Kernel::F64(net) => net.restore_training_state(params, velocity, steps),
            #[cfg(feature = "f32-kernels")]
            Kernel::F32(net) => net.restore_training_state(params, velocity, steps),
        }
    }

    /// Single-sample forward passes run so far (the counting probe behind
    /// the `best_action` cost regression test), summed across both
    /// precisions' workspaces.
    pub fn forward_passes(&self) -> u64 {
        #[cfg(feature = "f32-kernels")]
        {
            self.ws.forward_passes() + self.ws32.forward_passes()
        }
        #[cfg(not(feature = "f32-kernels"))]
        {
            self.ws.forward_passes()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PolicyKind;

    fn obs() -> SiteObservation {
        SiteObservation {
            mean_load: 2.0,
            mean_queue_free: 0.5,
            mean_power_frac: 0.6,
            mean_capacity: 1500.0,
            max_procs: 6,
            pending: 8,
            priority_mix: [0.3, 0.4, 0.3],
            availability: 1.0,
        }
    }

    #[test]
    fn learns_to_prefer_the_rewarded_action() {
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 7);
        let good = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 5,
        };
        let bad = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 1,
        };
        let o = obs();
        for _ in 0..300 {
            v.train(&o, good, 0.9);
            v.train(&o, bad, 0.1);
        }
        assert!(v.predict(&o, good) > v.predict(&o, bad) + 0.3);
        assert_eq!(v.best_action(&o, &[bad, good]), good);
        assert_eq!(v.steps(), 600);
    }

    #[test]
    fn training_error_shrinks() {
        let mut v = ValueEstimator::new(6, 0.05, 0.0, 3);
        let a = ActionChoice {
            policy: PolicyKind::Identical,
            opnum: 4,
        };
        let o = obs();
        let first = v.train(&o, a, 0.7);
        let mut last = first;
        for _ in 0..200 {
            last = v.train(&o, a, 0.7);
        }
        assert!(last < first * 0.05, "{first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        let mut v = ValueEstimator::new(4, 0.05, 0.0, 1);
        let _ = v.best_action(&obs(), &[]);
    }

    #[test]
    fn best_action_scores_each_candidate_exactly_once() {
        // Regression test for the former max_by-over-predict formulation,
        // which ran ≈ 2(n−1) forward passes per decision.
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 11);
        let o = obs();
        let cands = ActionChoice::candidates(6);
        assert_eq!(cands.len(), 12);
        let before = v.forward_passes();
        let _ = v.best_action(&o, &cands);
        assert_eq!(
            v.forward_passes() - before,
            cands.len() as u64,
            "one forward pass per candidate, no re-evaluation"
        );
    }

    #[test]
    fn best_action_matches_max_by_reference() {
        // The cached-score argmax must replicate Iterator::max_by exactly,
        // including its keep-the-last-maximum tie rule.
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 13);
        let o = obs();
        for i in 0..50 {
            let cands = ActionChoice::candidates(6);
            // Scores from the same estimator state the decision will use.
            let scores: Vec<f64> = cands.iter().map(|&c| v.predict(&o, c)).collect();
            let expect = cands
                .iter()
                .zip(&scores)
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| *c)
                .expect("non-empty");
            assert_eq!(v.best_action(&o, &cands), expect, "iteration {i}");
            // Shift the landscape between rounds.
            let a = cands[i % cands.len()];
            v.train(&o, a, (i % 7) as f64 / 7.0);
        }
    }

    #[test]
    fn tie_rule_keeps_the_last_maximum() {
        // An untrained net with zero-init output bias can still break ties
        // arbitrarily; force a genuine tie by duplicating one candidate.
        let mut v = ValueEstimator::new(4, 0.05, 0.0, 5);
        let o = obs();
        let a = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 2,
        };
        let b = ActionChoice {
            policy: PolicyKind::Identical,
            opnum: 2,
        };
        let dup = [a, b, a];
        let reference = *dup
            .iter()
            .zip([v.predict(&o, a), v.predict(&o, b), v.predict(&o, a)].iter())
            .max_by(|x, y| x.1.total_cmp(y.1))
            .map(|(c, _)| c)
            .expect("non-empty");
        assert_eq!(v.best_action(&o, &dup), reference);
    }

    #[test]
    fn batched_multi_site_scoring_matches_per_site_best_action() {
        // Staging several decisions and resolving them through one
        // score_batch must pick exactly what per-decision best_action picks.
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 17);
        let o1 = obs();
        let mut o2 = obs();
        o2.mean_load = 4.0;
        o2.pending = 2;
        let c1 = ActionChoice::candidates(6);
        let c2 = ActionChoice::candidates(3);
        let want1 = v.best_action(&o1, &c1);
        let want2 = v.best_action(&o2, &c2);
        v.begin_batch();
        let s1 = v.push_candidates(&o1, &c1);
        let s2 = v.push_candidates(&o2, &c2);
        assert_eq!(v.batch_rows(), c1.len() + c2.len());
        v.score_batch();
        assert_eq!(c1[v.argmax_in(s1, c1.len())], want1);
        assert_eq!(c2[v.argmax_in(s2, c2.len())], want2);
    }

    #[test]
    fn snapshot_roundtrip_restores_predictions() {
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 19);
        let o = obs();
        let a = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 3,
        };
        for i in 0..40 {
            v.train(&o, a, (i % 5) as f64 / 5.0);
        }
        let mut params = Vec::new();
        let mut velocity = Vec::new();
        let steps = v.snapshot_into(&mut params, &mut velocity);
        assert_eq!(steps, 40);
        assert_eq!(params.len(), v.param_count());
        let before = v.predict(&o, a);
        let mut fresh = ValueEstimator::new(8, 0.05, 0.5, 19);
        assert!(fresh.restore_snapshot(&params, &velocity, steps));
        assert_eq!(fresh.predict(&o, a).to_bits(), before.to_bits());
        let mut wrong = ValueEstimator::new(4, 0.05, 0.5, 19);
        assert!(!wrong.restore_snapshot(&params, &velocity, steps));
    }

    #[test]
    fn default_precision_is_f64() {
        let v = ValueEstimator::new(4, 0.05, 0.0, 1);
        assert_eq!(v.precision(), neural::KernelPrecision::F64);
    }
}
