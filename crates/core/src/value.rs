//! The neural value estimator.
//!
//! Predicts the normalised learning value of taking a grouping action in a
//! given site state — the function-approximation role the paper assigns to
//! the neural-network structure of \[10\]. Trained online: one SGD step per
//! completed learning cycle.
//!
//! The estimator owns a reusable [`neural::Workspace`] plus candidate
//! scratch buffers, so `predict`/`train`/`best_action` are allocation-free
//! after the first call. `best_action` encodes all candidates into one
//! scratch matrix and scores them in a single [`Mlp::score_into`] pass —
//! n forward passes per decision, where the former `max_by`-over-`predict`
//! formulation re-evaluated both comparands (≈ 2(n−1) passes).

use crate::action::ActionChoice;
use crate::state::{SiteObservation, STATE_FEATURES};
use neural::{Activation, Mlp, Sgd, Workspace};

/// Width of the estimator's input: state features plus action features.
pub const INPUT_WIDTH: usize = STATE_FEATURES + 3;

/// Value estimator: `(state, action) → expected normalised l_val`.
#[derive(Debug, Clone)]
pub struct ValueEstimator {
    net: Mlp,
    /// Reusable forward/backward scratch.
    ws: Workspace,
    /// Candidate encoding matrix, one `INPUT_WIDTH` row per candidate.
    enc: Vec<f64>,
    /// Candidate scores, parallel to the encoded rows.
    scores: Vec<f64>,
}

impl ValueEstimator {
    /// Creates an estimator with one hidden layer of `hidden` units.
    pub fn new(hidden: usize, lr: f64, momentum: f64, seed: u64) -> Self {
        ValueEstimator {
            net: Mlp::new(
                &[INPUT_WIDTH, hidden, 1],
                Activation::Tanh,
                Sgd::new(lr, momentum),
                seed,
            ),
            ws: Workspace::default(),
            enc: Vec::new(),
            scores: Vec::new(),
        }
    }

    fn encode(obs: &SiteObservation, action: ActionChoice) -> [f64; INPUT_WIDTH] {
        let mut input = [0.0; INPUT_WIDTH];
        input[..STATE_FEATURES].copy_from_slice(&obs.features());
        input[STATE_FEATURES..].copy_from_slice(&action.features(obs.max_procs));
        input
    }

    /// Predicted normalised learning value of `action` in `obs`.
    pub fn predict(&mut self, obs: &SiteObservation, action: ActionChoice) -> f64 {
        self.net
            .predict_scalar_into(&Self::encode(obs, action), &mut self.ws)
    }

    /// One online training step toward the observed normalised target;
    /// returns the pre-update squared error.
    pub fn train(&mut self, obs: &SiteObservation, action: ActionChoice, target: f64) -> f64 {
        self.net
            .train_step(&Self::encode(obs, action), &[target], &mut self.ws)
    }

    /// The action among `candidates` with the highest predicted value.
    ///
    /// Every candidate is encoded into the reusable scratch matrix and
    /// scored in one batched pass; the argmax over the cached scores keeps
    /// `max_by`'s tie rule (the *last* maximal element wins), so the choice
    /// is bit-identical to the pairwise formulation it replaced.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn best_action(
        &mut self,
        obs: &SiteObservation,
        candidates: &[ActionChoice],
    ) -> ActionChoice {
        use std::cmp::Ordering;
        assert!(!candidates.is_empty(), "need at least one candidate action");
        self.enc.clear();
        for &c in candidates {
            self.enc.extend_from_slice(&Self::encode(obs, c));
        }
        self.net
            .score_into(&self.enc, &mut self.scores, &mut self.ws);
        let mut best = 0usize;
        for (i, s) in self.scores.iter().enumerate().skip(1) {
            if s.total_cmp(&self.scores[best]) != Ordering::Less {
                best = i;
            }
        }
        candidates[best]
    }

    /// Training steps taken so far.
    pub fn steps(&self) -> u64 {
        self.net.steps()
    }

    /// The underlying network (checkpointing reads its flat buffers).
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Mutable network access (checkpointing restores its flat buffers).
    pub fn network_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Single-sample forward passes run so far (the counting probe behind
    /// the `best_action` cost regression test).
    pub fn forward_passes(&self) -> u64 {
        self.ws.forward_passes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PolicyKind;

    fn obs() -> SiteObservation {
        SiteObservation {
            mean_load: 2.0,
            mean_queue_free: 0.5,
            mean_power_frac: 0.6,
            mean_capacity: 1500.0,
            max_procs: 6,
            pending: 8,
            priority_mix: [0.3, 0.4, 0.3],
            availability: 1.0,
        }
    }

    #[test]
    fn learns_to_prefer_the_rewarded_action() {
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 7);
        let good = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 5,
        };
        let bad = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 1,
        };
        let o = obs();
        for _ in 0..300 {
            v.train(&o, good, 0.9);
            v.train(&o, bad, 0.1);
        }
        assert!(v.predict(&o, good) > v.predict(&o, bad) + 0.3);
        assert_eq!(v.best_action(&o, &[bad, good]), good);
        assert_eq!(v.steps(), 600);
    }

    #[test]
    fn training_error_shrinks() {
        let mut v = ValueEstimator::new(6, 0.05, 0.0, 3);
        let a = ActionChoice {
            policy: PolicyKind::Identical,
            opnum: 4,
        };
        let o = obs();
        let first = v.train(&o, a, 0.7);
        let mut last = first;
        for _ in 0..200 {
            last = v.train(&o, a, 0.7);
        }
        assert!(last < first * 0.05, "{first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        let mut v = ValueEstimator::new(4, 0.05, 0.0, 1);
        let _ = v.best_action(&obs(), &[]);
    }

    #[test]
    fn best_action_scores_each_candidate_exactly_once() {
        // Regression test for the former max_by-over-predict formulation,
        // which ran ≈ 2(n−1) forward passes per decision.
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 11);
        let o = obs();
        let cands = ActionChoice::candidates(6);
        assert_eq!(cands.len(), 12);
        let before = v.forward_passes();
        let _ = v.best_action(&o, &cands);
        assert_eq!(
            v.forward_passes() - before,
            cands.len() as u64,
            "one forward pass per candidate, no re-evaluation"
        );
    }

    #[test]
    fn best_action_matches_max_by_reference() {
        // The cached-score argmax must replicate Iterator::max_by exactly,
        // including its keep-the-last-maximum tie rule.
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 13);
        let o = obs();
        for i in 0..50 {
            let cands = ActionChoice::candidates(6);
            // Scores from the same estimator state the decision will use.
            let scores: Vec<f64> = cands.iter().map(|&c| v.predict(&o, c)).collect();
            let expect = cands
                .iter()
                .zip(&scores)
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| *c)
                .expect("non-empty");
            assert_eq!(v.best_action(&o, &cands), expect, "iteration {i}");
            // Shift the landscape between rounds.
            let a = cands[i % cands.len()];
            v.train(&o, a, (i % 7) as f64 / 7.0);
        }
    }

    #[test]
    fn tie_rule_keeps_the_last_maximum() {
        // An untrained net with zero-init output bias can still break ties
        // arbitrarily; force a genuine tie by duplicating one candidate.
        let mut v = ValueEstimator::new(4, 0.05, 0.0, 5);
        let o = obs();
        let a = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 2,
        };
        let b = ActionChoice {
            policy: PolicyKind::Identical,
            opnum: 2,
        };
        let dup = [a, b, a];
        let reference = *dup
            .iter()
            .zip([v.predict(&o, a), v.predict(&o, b), v.predict(&o, a)].iter())
            .max_by(|x, y| x.1.total_cmp(y.1))
            .map(|(c, _)| c)
            .expect("non-empty");
        assert_eq!(v.best_action(&o, &dup), reference);
    }
}
