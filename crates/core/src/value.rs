//! The neural value estimator.
//!
//! Predicts the normalised learning value of taking a grouping action in a
//! given site state — the function-approximation role the paper assigns to
//! the neural-network structure of \[10\]. Trained online: one SGD step per
//! completed learning cycle.

use crate::action::ActionChoice;
use crate::state::{SiteObservation, STATE_FEATURES};
use neural::{Activation, Mlp, Sgd};

/// Width of the estimator's input: state features plus action features.
pub const INPUT_WIDTH: usize = STATE_FEATURES + 3;

/// Value estimator: `(state, action) → expected normalised l_val`.
#[derive(Debug, Clone)]
pub struct ValueEstimator {
    net: Mlp,
}

impl ValueEstimator {
    /// Creates an estimator with one hidden layer of `hidden` units.
    pub fn new(hidden: usize, lr: f64, momentum: f64, seed: u64) -> Self {
        ValueEstimator {
            net: Mlp::new(
                &[INPUT_WIDTH, hidden, 1],
                Activation::Tanh,
                Sgd::new(lr, momentum),
                seed,
            ),
        }
    }

    fn encode(obs: &SiteObservation, action: ActionChoice) -> [f64; INPUT_WIDTH] {
        let mut input = [0.0; INPUT_WIDTH];
        input[..STATE_FEATURES].copy_from_slice(&obs.features());
        input[STATE_FEATURES..].copy_from_slice(&action.features(obs.max_procs));
        input
    }

    /// Predicted normalised learning value of `action` in `obs`.
    pub fn predict(&self, obs: &SiteObservation, action: ActionChoice) -> f64 {
        self.net.predict_scalar(&Self::encode(obs, action))
    }

    /// One online training step toward the observed normalised target;
    /// returns the pre-update squared error.
    pub fn train(&mut self, obs: &SiteObservation, action: ActionChoice, target: f64) -> f64 {
        self.net.train_step(&Self::encode(obs, action), &[target])
    }

    /// The action among `candidates` with the highest predicted value.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn best_action(&self, obs: &SiteObservation, candidates: &[ActionChoice]) -> ActionChoice {
        assert!(!candidates.is_empty(), "need at least one candidate action");
        *candidates
            .iter()
            .max_by(|a, b| self.predict(obs, **a).total_cmp(&self.predict(obs, **b)))
            .expect("non-empty")
    }

    /// Training steps taken so far.
    pub fn steps(&self) -> u64 {
        self.net.steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PolicyKind;

    fn obs() -> SiteObservation {
        SiteObservation {
            mean_load: 2.0,
            mean_queue_free: 0.5,
            mean_power_frac: 0.6,
            mean_capacity: 1500.0,
            max_procs: 6,
            pending: 8,
            priority_mix: [0.3, 0.4, 0.3],
            availability: 1.0,
        }
    }

    #[test]
    fn learns_to_prefer_the_rewarded_action() {
        let mut v = ValueEstimator::new(8, 0.05, 0.5, 7);
        let good = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 5,
        };
        let bad = ActionChoice {
            policy: PolicyKind::Mixed,
            opnum: 1,
        };
        let o = obs();
        for _ in 0..300 {
            v.train(&o, good, 0.9);
            v.train(&o, bad, 0.1);
        }
        assert!(v.predict(&o, good) > v.predict(&o, bad) + 0.3);
        assert_eq!(v.best_action(&o, &[bad, good]), good);
        assert_eq!(v.steps(), 600);
    }

    #[test]
    fn training_error_shrinks() {
        let mut v = ValueEstimator::new(6, 0.05, 0.0, 3);
        let a = ActionChoice {
            policy: PolicyKind::Identical,
            opnum: 4,
        };
        let o = obs();
        let first = v.train(&o, a, 0.7);
        let mut last = first;
        for _ in 0..200 {
            last = v.train(&o, a, 0.7);
        }
        assert!(last < first * 0.05, "{first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        let v = ValueEstimator::new(4, 0.05, 0.0, 1);
        let _ = v.best_action(&obs(), &[]);
    }
}
