//! Property-based tests for workload generation and the trace format.

use proptest::prelude::*;
use simcore::rng::RngStream;
use workload::{
    read_trace, write_trace, Priority, PriorityMix, Task, Workload, WorkloadProfile, WorkloadSpec,
};

fn spec_strategy() -> impl Strategy<Value = (WorkloadSpec, u64)> {
    (
        1usize..400,
        0.01f64..20.0,
        (100.0f64..5000.0, 1.0f64..5000.0),
        0.0f64..1.0,
        0.0f64..1.0,
        1u32..8,
        100.0f64..1000.0,
        any::<u64>(),
    )
        .prop_map(|(n, iat, (smin, extra), a, b, sites, refspeed, seed)| {
            // Map (a, b) onto a valid probability simplex.
            let low = a * 0.9;
            let medium = (1.0 - low) * b;
            let high = 1.0 - low - medium;
            (
                WorkloadSpec {
                    num_tasks: n,
                    mean_interarrival: iat,
                    size_min_mi: smin,
                    size_max_mi: smin + extra,
                    priority_mix: PriorityMix::new(low, medium, high),
                    num_sites: sites,
                    reference_speed_mips: refspeed,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_workloads_satisfy_model_invariants((spec, seed) in spec_strategy()) {
        let w = Workload::generate(spec.clone(), &RngStream::root(seed));
        prop_assert_eq!(w.len(), spec.num_tasks);
        let mut prev = None;
        for (i, t) in w.tasks.iter().enumerate() {
            prop_assert_eq!(t.id.0, i as u64, "dense ids");
            prop_assert!((spec.size_min_mi..=spec.size_max_mi).contains(&t.size_mi));
            prop_assert!(t.site.0 < spec.num_sites);
            if let Some(p) = prev {
                prop_assert!(t.arrival >= p, "arrival order");
            }
            prev = Some(t.arrival);
            // Deadline window consistent with the priority band.
            let act = t.size_mi / spec.reference_speed_mips;
            let slack = (t.deadline.since(t.arrival).as_f64() - act) / act;
            prop_assert!((-1e-9..=1.5 + 1e-9).contains(&slack), "slack {slack}");
            prop_assert_eq!(Priority::from_slack(slack.clamp(0.0, 1.5)), t.priority);
        }
    }

    #[test]
    fn trace_round_trip_is_lossless((spec, seed) in spec_strategy()) {
        let tasks = Workload::generate(spec, &RngStream::root(seed)).tasks;
        let bytes = write_trace(&tasks);
        let back = read_trace(&bytes).expect("well-formed trace must decode");
        prop_assert_eq!(back, tasks);
    }

    #[test]
    fn truncated_traces_never_decode((spec, seed) in spec_strategy(), cut in 1usize..32) {
        let tasks = Workload::generate(spec, &RngStream::root(seed)).tasks;
        let bytes = write_trace(&tasks);
        let cut = cut.min(bytes.len().saturating_sub(1));
        if cut > 0 {
            let truncated = &bytes[..bytes.len() - cut];
            prop_assert!(read_trace(truncated).is_err(), "truncation must be detected");
        }
    }

    #[test]
    fn profile_totals_match((spec, seed) in spec_strategy()) {
        let tasks: Vec<Task> = Workload::generate(spec, &RngStream::root(seed)).tasks;
        let p = WorkloadProfile::from_tasks(&tasks);
        prop_assert_eq!(p.total() as usize, tasks.len());
        let frac_sum: f64 = Priority::ALL.iter().map(|&x| p.fraction(x)).sum();
        prop_assert!((frac_sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(p.size_mi.count() as usize, tasks.len());
        if tasks.len() > 1 {
            prop_assert_eq!(p.interarrival.count() as usize, tasks.len() - 1);
        }
    }

    #[test]
    fn priority_classifier_matches_band(slack in 0.0f64..1.5) {
        let p = Priority::from_slack(slack);
        let (lo, hi) = p.slack_band();
        // Band edges are shared; membership must hold up to the boundary.
        prop_assert!(slack >= lo - 1e-12 && slack <= hi + 1e-12,
            "slack {slack} classified {p} with band [{lo}, {hi}]");
    }
}
