//! Compact binary trace format for workloads.
//!
//! Generated workloads can be frozen to a byte buffer and replayed later, so
//! that different schedulers (or different builds) are driven by *exactly*
//! the same task stream. The format is a fixed little-endian record layout
//! with a magic header and version byte; round-trips are lossless.

use crate::priority::Priority;
use crate::task::{SiteId, Task, TaskId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use simcore::time::SimTime;
use std::io;
use std::path::Path;

/// Magic bytes identifying a workload trace.
const MAGIC: &[u8; 4] = b"ARLW";
/// Current format version.
const VERSION: u8 = 1;
/// Bytes per task record: id(8) size(8) arrival(8) deadline(8) prio(1) site(4).
const RECORD_LEN: usize = 8 + 8 + 8 + 8 + 1 + 4;

/// Errors produced while decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Buffer does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Buffer ended mid-record or the declared count does not fit.
    Truncated,
    /// A priority byte was out of range.
    BadPriority(u8),
    /// A floating-point field was non-finite or otherwise invalid.
    BadField(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a workload trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace is truncated"),
            TraceError::BadPriority(b) => write!(f, "invalid priority byte {b}"),
            TraceError::BadField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Serializes tasks into a self-describing byte buffer.
pub fn write_trace(tasks: &[Task]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 1 + 8 + tasks.len() * RECORD_LEN);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(tasks.len() as u64);
    for t in tasks {
        buf.put_u64_le(t.id.0);
        buf.put_f64_le(t.size_mi);
        buf.put_f64_le(t.arrival.as_f64());
        buf.put_f64_le(t.deadline.as_f64());
        buf.put_u8(t.priority.index() as u8);
        buf.put_u32_le(t.site.0);
    }
    buf.freeze()
}

/// Writes a trace to a file (see [`write_trace`] for the format).
pub fn save_trace(path: impl AsRef<Path>, tasks: &[Task]) -> io::Result<()> {
    std::fs::write(path, write_trace(tasks))
}

/// Reads a trace file written by [`save_trace`].
pub fn load_trace(path: impl AsRef<Path>) -> io::Result<Vec<Task>> {
    let bytes = std::fs::read(path)?;
    read_trace(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Decodes a trace produced by [`write_trace`].
pub fn read_trace(mut buf: &[u8]) -> Result<Vec<Task>, TraceError> {
    if buf.remaining() < 4 + 1 + 8 {
        return Err(TraceError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let count = buf.get_u64_le() as usize;
    if buf.remaining() < count * RECORD_LEN {
        return Err(TraceError::Truncated);
    }
    let mut tasks = Vec::with_capacity(count);
    for _ in 0..count {
        let id = TaskId(buf.get_u64_le());
        let size_mi = buf.get_f64_le();
        let arrival = buf.get_f64_le();
        let deadline = buf.get_f64_le();
        let prio_byte = buf.get_u8();
        let site = SiteId(buf.get_u32_le());
        if !(size_mi.is_finite() && size_mi > 0.0) {
            return Err(TraceError::BadField("size_mi"));
        }
        if !(arrival.is_finite() && arrival >= 0.0) {
            return Err(TraceError::BadField("arrival"));
        }
        if !(deadline.is_finite() && deadline >= arrival) {
            return Err(TraceError::BadField("deadline"));
        }
        let priority = match prio_byte {
            0 => Priority::Low,
            1 => Priority::Medium,
            2 => Priority::High,
            b => return Err(TraceError::BadPriority(b)),
        };
        tasks.push(Task {
            id,
            size_mi,
            arrival: SimTime::new(arrival),
            deadline: SimTime::new(deadline),
            priority,
            site,
        });
    }
    Ok(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Workload, WorkloadSpec};
    use simcore::rng::RngStream;

    fn sample_tasks(n: usize) -> Vec<Task> {
        Workload::generate(WorkloadSpec::paper(n, 4, 500.0), &RngStream::root(77)).tasks
    }

    #[test]
    fn round_trip_is_lossless() {
        let tasks = sample_tasks(250);
        let bytes = write_trace(&tasks);
        let back = read_trace(&bytes).expect("decode");
        assert_eq!(back, tasks);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = write_trace(&[]);
        assert_eq!(read_trace(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_detected() {
        let tasks = sample_tasks(2);
        let mut raw = write_trace(&tasks).to_vec();
        raw[0] = b'X';
        assert_eq!(read_trace(&raw), Err(TraceError::BadMagic));
    }

    #[test]
    fn bad_version_detected() {
        let mut raw = write_trace(&sample_tasks(1)).to_vec();
        raw[4] = 99;
        assert_eq!(read_trace(&raw), Err(TraceError::BadVersion(99)));
    }

    #[test]
    fn truncation_detected() {
        let raw = write_trace(&sample_tasks(3));
        let cut = &raw[..raw.len() - 5];
        assert_eq!(read_trace(cut), Err(TraceError::Truncated));
        assert_eq!(read_trace(&raw[..6]), Err(TraceError::Truncated));
    }

    #[test]
    fn bad_priority_detected() {
        let mut raw = write_trace(&sample_tasks(1)).to_vec();
        // Priority byte of the single record sits 4 bytes from the end.
        let idx = raw.len() - 5;
        raw[idx] = 7;
        assert_eq!(read_trace(&raw), Err(TraceError::BadPriority(7)));
    }

    #[test]
    fn corrupt_float_detected() {
        let mut raw = write_trace(&sample_tasks(1)).to_vec();
        // size_mi occupies bytes 21..29 (after magic 4, version 1, count 8, id 8).
        for b in raw.iter_mut().skip(21).take(8) {
            *b = 0xFF; // NaN pattern
        }
        assert_eq!(read_trace(&raw), Err(TraceError::BadField("size_mi")));
    }

    #[test]
    fn file_round_trip() {
        let tasks = sample_tasks(40);
        let path = std::env::temp_dir().join("arl_trace_roundtrip_test.bin");
        save_trace(&path, &tasks).expect("write file");
        let back = load_trace(&path).expect("read file");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, tasks);
    }

    #[test]
    fn load_rejects_garbage_file() {
        let path = std::env::temp_dir().join("arl_trace_garbage_test.bin");
        std::fs::write(&path, b"not a trace").expect("write file");
        let err = load_trace(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn error_display_is_informative() {
        let s = format!("{}", TraceError::BadVersion(3));
        assert!(s.contains('3'));
    }
}
