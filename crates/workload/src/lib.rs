//! Workload model for the Adaptive-RL scheduling study.
//!
//! Tasks follow the paper's application model (§III.A): each task
//! `T_i = {s_i, d_i}` is an independent, computation-intensive, sequential
//! unit with
//!
//! * a computational size `s_i` in millions of instructions (MI), drawn
//!   uniformly from 600–7200 MI,
//! * a deadline `d_i = ACT_i + add_t`, where `ACT_i` is the execution time
//!   on the *slowest* (reference) resource and `add_t` ranges over 0–150 %
//!   of `ACT_i`,
//! * a priority derived from the deadline slack: **high** when the deadline
//!   is at most 20 % later than `ACT_i`, **low** when it is 80 % or more
//!   later, **medium** otherwise.
//!
//! Tasks arrive in a Poisson process with a configurable mean inter-arrival
//! time (five time units in the paper's experiments).

#![warn(missing_docs)]

pub mod generator;
pub mod priority;
pub mod profile;
pub mod submit;
pub mod task;
pub mod trace;

pub use generator::{Workload, WorkloadSpec};
pub use priority::{Priority, PriorityMix};
pub use profile::WorkloadProfile;
pub use submit::{Notification, Submission, SubmitTask};
pub use task::{SiteId, Task, TaskId};
pub use trace::{load_trace, read_trace, save_trace, write_trace};
