//! The task type — `T_i = {s_i, d_i}` of Eq. (1).

use crate::priority::Priority;
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use std::fmt;

/// Unique task identifier, dense from 0 within one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// Identifier of the resource site a task arrives at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// An independent, computation-intensive, sequential task.
///
/// `ACT` (the expected execution time used to set deadlines and priorities)
/// is always relative to the *reference speed* — the slowest processor of
/// the platform — per §III.A of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// Computational size in millions of instructions (MI).
    pub size_mi: f64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Absolute completion deadline `d_i`.
    pub deadline: SimTime,
    /// Urgency class derived from deadline slack.
    pub priority: Priority,
    /// Resource site the task arrives at (one agent per site).
    pub site: SiteId,
}

impl Task {
    /// Expected execution time on a resource of speed `ref_speed_mips`
    /// (Eq. 3: `ET = s_i / sp_j`).
    ///
    /// # Panics
    /// Panics if `ref_speed_mips` is not strictly positive.
    #[inline]
    pub fn expected_exec_time(&self, ref_speed_mips: f64) -> SimDuration {
        assert!(
            ref_speed_mips > 0.0,
            "speed must be positive, got {ref_speed_mips}"
        );
        SimDuration::new(self.size_mi / ref_speed_mips)
    }

    /// Remaining slack at `now`: time until the deadline, saturating at 0.
    #[inline]
    pub fn slack_at(&self, now: SimTime) -> SimDuration {
        self.deadline.since(now)
    }

    /// Whether a completion at `finish` meets the deadline (Eq. 8's
    /// indicator: `ACT_i <= d_i`, i.e. finished no later than `d_i`).
    #[inline]
    pub fn meets_deadline(&self, finish: SimTime) -> bool {
        finish <= self.deadline
    }

    /// The paper's *processing weight contribution*: `s_i / d_i` where the
    /// deadline is measured as the window from arrival (`d_i - arrival`).
    /// Larger values mean more work per unit of allowed time, i.e. more
    /// urgent work.
    #[inline]
    pub fn urgency_density(&self) -> f64 {
        let window = self.deadline.since(self.arrival).as_f64();
        debug_assert!(window > 0.0, "deadline window must be positive");
        self.size_mi / window
    }

    /// Serializes the task into a checkpoint byte stream (shared by the
    /// engine checkpointer and every scheduler's pending-pool state).
    pub fn snap_write(&self, w: &mut snapshot::SnapWriter) {
        w.u64(self.id.0);
        w.f64(self.size_mi);
        w.f64(self.arrival.as_f64());
        w.f64(self.deadline.as_f64());
        w.u8(self.priority.index() as u8);
        w.u32(self.site.0);
    }

    /// Reads back a task written by [`Task::snap_write`]. Site-index range
    /// checks are the caller's job (the platform shape is not known here).
    ///
    /// # Errors
    /// Returns a typed error on truncated bytes, non-finite or negative
    /// sizes/times, or an unknown priority tag; never panics.
    pub fn snap_read(r: &mut snapshot::SnapReader<'_>) -> Result<Task, snapshot::SnapshotError> {
        let id = TaskId(r.u64()?);
        let size_mi = r.f64_time()?;
        let arrival = SimTime::new(r.f64_time()?);
        let deadline = SimTime::new(r.f64_time()?);
        let priority = match r.u8()? {
            0 => Priority::Low,
            1 => Priority::Medium,
            2 => Priority::High,
            t => return Err(snapshot::corrupt(format!("unknown priority tag {t}"))),
        };
        let site = SiteId(r.u32()?);
        Ok(Task {
            id,
            size_mi,
            arrival,
            deadline,
            priority,
            site,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(size: f64, arrival: f64, deadline: f64) -> Task {
        Task {
            id: TaskId(1),
            size_mi: size,
            arrival: SimTime::new(arrival),
            deadline: SimTime::new(deadline),
            priority: Priority::Medium,
            site: SiteId(0),
        }
    }

    #[test]
    fn exec_time_is_size_over_speed() {
        let t = mk(1000.0, 0.0, 10.0);
        assert_eq!(t.expected_exec_time(500.0).as_f64(), 2.0);
        assert_eq!(t.expected_exec_time(1000.0).as_f64(), 1.0);
    }

    #[test]
    fn deadline_check_is_inclusive() {
        let t = mk(100.0, 0.0, 5.0);
        assert!(t.meets_deadline(SimTime::new(5.0)));
        assert!(t.meets_deadline(SimTime::new(4.9)));
        assert!(!t.meets_deadline(SimTime::new(5.1)));
    }

    #[test]
    fn slack_saturates() {
        let t = mk(100.0, 0.0, 5.0);
        assert_eq!(t.slack_at(SimTime::new(2.0)).as_f64(), 3.0);
        assert_eq!(t.slack_at(SimTime::new(9.0)).as_f64(), 0.0);
    }

    #[test]
    fn urgency_density_scales_with_size_and_window() {
        let tight = mk(1000.0, 10.0, 12.0); // 500 MI per unit
        let loose = mk(1000.0, 10.0, 20.0); // 100 MI per unit
        assert!(tight.urgency_density() > loose.urgency_density());
        assert_eq!(tight.urgency_density(), 500.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = mk(1.0, 0.0, 1.0).expected_exec_time(0.0);
    }
}
