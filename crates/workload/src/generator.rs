//! Workload generation per §V.A of the paper.
//!
//! A [`WorkloadSpec`] captures the experiment knobs: task count (500–3000),
//! mean inter-arrival (5 time units), size range (600–7200 MI), priority
//! mix, and the number of sites tasks are spread over. Generation is
//! deterministic given an [`RngStream`].
//!
//! Deadlines are produced *consistently with the requested priority*: the
//! generator first draws the priority class from the mix, then draws the
//! slack fraction `add_t` uniformly within that class's band (§III.A defines
//! the bands; §V.A says "the computational size and deadline are satisfied
//! with the measurement made for the task priority").

use crate::priority::PriorityMix;
use crate::task::{SiteId, Task, TaskId};
use serde::{Deserialize, Serialize};
use simcore::poisson::PoissonProcess;
use simcore::rng::RngStream;
use simcore::time::{SimDuration, SimTime};

/// Declarative description of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Total number of tasks (paper: 500–3000).
    pub num_tasks: usize,
    /// Mean Poisson inter-arrival time (paper: 5 time units).
    pub mean_interarrival: f64,
    /// Minimum task size in MI (paper: 600).
    pub size_min_mi: f64,
    /// Maximum task size in MI (paper: 7200).
    pub size_max_mi: f64,
    /// Priority class probabilities.
    pub priority_mix: PriorityMix,
    /// Number of resource sites arrivals are spread over (uniformly).
    pub num_sites: u32,
    /// Reference speed (MIPS) of the slowest resource, used for `ACT`.
    pub reference_speed_mips: f64,
}

impl WorkloadSpec {
    /// The paper's §V.A settings with the given task count, site count and
    /// reference speed.
    pub fn paper(num_tasks: usize, num_sites: u32, reference_speed_mips: f64) -> Self {
        WorkloadSpec {
            num_tasks,
            mean_interarrival: 5.0,
            size_min_mi: 600.0,
            size_max_mi: 7200.0,
            priority_mix: PriorityMix::uniform(),
            num_sites,
            reference_speed_mips,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on an impossible spec (empty ranges, zero sites, …).
    pub fn validate(&self) {
        assert!(
            self.num_tasks > 0,
            "workload must contain at least one task"
        );
        assert!(
            self.mean_interarrival > 0.0,
            "mean inter-arrival must be positive"
        );
        assert!(
            self.size_min_mi > 0.0 && self.size_min_mi <= self.size_max_mi,
            "invalid size range [{}, {}]",
            self.size_min_mi,
            self.size_max_mi
        );
        assert!(self.num_sites > 0, "need at least one site");
        assert!(
            self.reference_speed_mips > 0.0,
            "reference speed must be positive"
        );
    }
}

/// A fully generated workload: tasks sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The spec this workload was generated from.
    pub spec: WorkloadSpec,
    /// Tasks in non-decreasing arrival order, ids dense from 0.
    pub tasks: Vec<Task>,
}

impl Workload {
    /// Generates a workload deterministically from `rng`.
    ///
    /// ```
    /// use simcore::rng::RngStream;
    /// use workload::{Workload, WorkloadSpec};
    ///
    /// let spec = WorkloadSpec::paper(100, 5, 500.0);
    /// let wl = Workload::generate(spec, &RngStream::root(42));
    /// assert_eq!(wl.len(), 100);
    /// assert!(wl.tasks.iter().all(|t| t.size_mi >= 600.0 && t.size_mi <= 7200.0));
    /// ```
    pub fn generate(spec: WorkloadSpec, rng: &RngStream) -> Workload {
        spec.validate();
        let mut arrivals = PoissonProcess::new(
            spec.mean_interarrival,
            SimTime::ZERO,
            rng.derive("workload.arrivals"),
        );
        let mut sizer = rng.derive("workload.sizes");
        let mut prio_rng = rng.derive("workload.priorities");
        let mut slack_rng = rng.derive("workload.slack");
        let mut site_rng = rng.derive("workload.sites");

        let mut tasks = Vec::with_capacity(spec.num_tasks);
        for i in 0..spec.num_tasks {
            let arrival = arrivals.next_arrival();
            let size_mi = if spec.size_min_mi == spec.size_max_mi {
                spec.size_min_mi
            } else {
                sizer.uniform(spec.size_min_mi, spec.size_max_mi)
            };
            let priority = spec.priority_mix.classify(prio_rng.unit());
            let (band_lo, band_hi) = priority.slack_band();
            let slack = if band_lo == band_hi {
                band_lo
            } else {
                slack_rng.uniform(band_lo, band_hi)
            };
            let act = size_mi / spec.reference_speed_mips;
            let deadline = arrival + SimDuration::new(act * (1.0 + slack));
            let site = SiteId(site_rng.pick(spec.num_sites as usize) as u32);
            tasks.push(Task {
                id: TaskId(i as u64),
                size_mi,
                arrival,
                deadline,
                priority,
                site,
            });
        }
        Workload { spec, tasks }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workload is empty (never true for generated workloads).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The last arrival instant (the generation horizon).
    pub fn horizon(&self) -> SimTime {
        self.tasks
            .last()
            .map(|t| t.arrival)
            .unwrap_or(SimTime::ZERO)
    }

    /// Tasks destined for one site, preserving arrival order.
    pub fn tasks_for_site(&self, site: SiteId) -> impl Iterator<Item = &Task> {
        self.tasks.iter().filter(move |t| t.site == site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::Priority;

    fn gen(seed: u64, n: usize) -> Workload {
        let spec = WorkloadSpec::paper(n, 5, 500.0);
        Workload::generate(spec, &RngStream::root(seed))
    }

    #[test]
    fn generates_requested_count_in_arrival_order() {
        let w = gen(1, 500);
        assert_eq!(w.len(), 500);
        for pair in w.tasks.windows(2) {
            assert!(pair[1].arrival >= pair[0].arrival);
        }
        for (i, t) in w.tasks.iter().enumerate() {
            assert_eq!(t.id.0, i as u64);
        }
    }

    #[test]
    fn sizes_within_paper_range() {
        let w = gen(2, 1000);
        for t in &w.tasks {
            assert!((600.0..7200.0).contains(&t.size_mi), "size {}", t.size_mi);
        }
    }

    #[test]
    fn deadlines_respect_priority_bands() {
        let w = gen(3, 2000);
        for t in &w.tasks {
            let act = t.size_mi / 500.0;
            let slack = (t.deadline.since(t.arrival).as_f64() - act) / act;
            // Allow floating-point fuzz at band edges.
            let classified = Priority::from_slack(slack.clamp(0.0, 1.5));
            assert_eq!(classified, t.priority, "slack {slack}");
        }
    }

    #[test]
    fn priority_mix_is_respected() {
        let spec = WorkloadSpec {
            priority_mix: PriorityMix::new(0.6, 0.3, 0.1),
            ..WorkloadSpec::paper(6000, 5, 500.0)
        };
        let w = Workload::generate(spec, &RngStream::root(4));
        let n = w.len() as f64;
        let frac = |p: Priority| w.tasks.iter().filter(|t| t.priority == p).count() as f64 / n;
        assert!((frac(Priority::Low) - 0.6).abs() < 0.03);
        assert!((frac(Priority::Medium) - 0.3).abs() < 0.03);
        assert!((frac(Priority::High) - 0.1).abs() < 0.03);
    }

    #[test]
    fn sites_are_covered() {
        let w = gen(5, 1000);
        for s in 0..5 {
            assert!(w.tasks_for_site(SiteId(s)).count() > 0, "site {s} starved");
        }
        let total: usize = (0..5).map(|s| w.tasks_for_site(SiteId(s)).count()).sum();
        assert_eq!(total, w.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(42, 300);
        let b = gen(42, 300);
        assert_eq!(a, b);
        let c = gen(43, 300);
        assert_ne!(a, c);
    }

    #[test]
    fn horizon_tracks_last_arrival() {
        let w = gen(6, 100);
        assert_eq!(w.horizon(), w.tasks.last().unwrap().arrival);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_spec_rejected() {
        let spec = WorkloadSpec::paper(0, 5, 500.0);
        let _ = Workload::generate(spec, &RngStream::root(1));
    }

    #[test]
    fn mean_interarrival_close_to_five() {
        let w = gen(7, 5000);
        let mean = w.horizon().as_f64() / w.len() as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean inter-arrival {mean}");
    }
}
