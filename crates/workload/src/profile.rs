//! Workload profiling.
//!
//! §III.A assumes "the task's profile is available and can be provided by
//! the user using job profiling, analytical models or historical
//! information". [`WorkloadProfile`] is that profile: per-priority counts,
//! size and slack statistics, and arrival-intensity summaries that the
//! schedulers (and the reports in EXPERIMENTS.md) consume.

use crate::priority::Priority;
use crate::task::Task;
use serde::{Deserialize, Serialize};
use simcore::stats::RunningStats;

/// Aggregate description of a set of tasks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Number of tasks per priority class (indexed by [`Priority::index`]).
    pub count_by_priority: [u64; 3],
    /// Task-size statistics (MI).
    pub size_mi: RunningStats,
    /// Deadline-window statistics (time units from arrival to deadline).
    pub deadline_window: RunningStats,
    /// Inter-arrival statistics (time units).
    pub interarrival: RunningStats,
    /// Urgency-density (`s_i / d_i`) statistics.
    pub urgency_density: RunningStats,
}

impl WorkloadProfile {
    /// Profiles a slice of tasks (assumed sorted by arrival, as produced by
    /// the generator).
    pub fn from_tasks(tasks: &[Task]) -> Self {
        let mut p = WorkloadProfile::default();
        let mut prev_arrival: Option<f64> = None;
        for t in tasks {
            p.count_by_priority[t.priority.index()] += 1;
            p.size_mi.push(t.size_mi);
            p.deadline_window.push(t.deadline.since(t.arrival).as_f64());
            p.urgency_density.push(t.urgency_density());
            if let Some(prev) = prev_arrival {
                p.interarrival.push(t.arrival.as_f64() - prev);
            }
            prev_arrival = Some(t.arrival.as_f64());
        }
        p
    }

    /// Total number of tasks profiled.
    pub fn total(&self) -> u64 {
        self.count_by_priority.iter().sum()
    }

    /// Fraction of tasks in the given class; 0 if the profile is empty.
    pub fn fraction(&self, priority: Priority) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count_by_priority[priority.index()] as f64 / total as f64
        }
    }

    /// Offered load in MI per time unit (mean size / mean inter-arrival);
    /// 0 for degenerate profiles.
    pub fn offered_load_mips(&self) -> f64 {
        let iat = self.interarrival.mean();
        if iat == 0.0 {
            0.0
        } else {
            self.size_mi.mean() / iat
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Workload, WorkloadSpec};
    use simcore::rng::RngStream;

    fn profile() -> WorkloadProfile {
        let spec = WorkloadSpec::paper(2000, 5, 500.0);
        let w = Workload::generate(spec, &RngStream::root(10));
        WorkloadProfile::from_tasks(&w.tasks)
    }

    #[test]
    fn counts_sum_to_total() {
        let p = profile();
        assert_eq!(p.total(), 2000);
        let fsum: f64 = Priority::ALL.iter().map(|&x| p.fraction(x)).sum();
        assert!((fsum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn size_stats_in_range() {
        let p = profile();
        assert!(p.size_mi.min().unwrap() >= 600.0);
        assert!(p.size_mi.max().unwrap() <= 7200.0);
        // Uniform [600, 7200] has mean 3900.
        assert!((p.size_mi.mean() - 3900.0).abs() < 150.0);
    }

    #[test]
    fn offered_load_is_positive() {
        let p = profile();
        let load = p.offered_load_mips();
        // mean size ~3900 MI / mean iat ~5 => ~780 MIPS offered.
        assert!((load - 780.0).abs() < 100.0, "offered load {load}");
    }

    #[test]
    fn empty_profile_is_benign() {
        let p = WorkloadProfile::from_tasks(&[]);
        assert_eq!(p.total(), 0);
        assert_eq!(p.fraction(Priority::High), 0.0);
        assert_eq!(p.offered_load_mips(), 0.0);
    }
}
