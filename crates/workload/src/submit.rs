//! Line-delimited JSON submission protocol shared by the `arls serve`
//! daemon and its clients (the `load_driver` bin, integration tests).
//!
//! One JSON object per line, in both directions:
//!
//! * client → server: a [`Submission`] — a client-chosen correlation id
//!   plus a batch of [`SubmitTask`]s (size, *relative* deadline,
//!   priority, target site). The server assigns the authoritative task
//!   ids and stamps arrival times in sim time.
//! * server → client: a stream of [`Notification`]s — one `ack` or
//!   `reject` per submission, then `placed` / `done` / `failed` lines as
//!   the simulation resolves each admitted task.
//!
//! Parsing uses the dependency-free [`telemetry::json`] parser;
//! rendering is plain string building (every numeric field is validated
//! finite, so `Display` formatting always yields legal JSON). Both
//! directions round-trip bit-exactly through each other, pinned by the
//! tests below.

use telemetry::json::{self, Json};

use crate::priority::Priority;
use crate::task::SiteId;

/// One task in a submission: everything the server needs to mint a
/// [`crate::Task`] except the id and the absolute times, which the
/// server derives at admission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitTask {
    /// Computational size in million instructions.
    pub size_mi: f64,
    /// Relative deadline: sim seconds after admission.
    pub deadline: f64,
    /// Priority class.
    pub priority: Priority,
    /// Target resource site.
    pub site: SiteId,
}

impl SubmitTask {
    /// Structural validation (finite positive size/deadline). Site range
    /// is the server's to check — the client doesn't know the platform.
    pub fn validate(&self) -> Result<(), String> {
        if !self.size_mi.is_finite() || self.size_mi <= 0.0 {
            return Err(format!("size_mi {} not positive and finite", self.size_mi));
        }
        if !self.deadline.is_finite() || self.deadline <= 0.0 {
            return Err(format!(
                "deadline {} not positive and finite",
                self.deadline
            ));
        }
        Ok(())
    }
}

/// A batch of tasks submitted as one unit (the serving counterpart of a
/// task group arriving at a site).
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// Client-chosen correlation id, echoed on the `ack`/`reject` line.
    pub id: u64,
    /// The tasks; admitted (or rejected) as a whole.
    pub tasks: Vec<SubmitTask>,
}

fn priority_name(p: Priority) -> &'static str {
    match p {
        Priority::Low => "low",
        Priority::Medium => "medium",
        Priority::High => "high",
    }
}

fn parse_priority(s: &str) -> Result<Priority, String> {
    match s {
        "low" => Ok(Priority::Low),
        "medium" => Ok(Priority::Medium),
        "high" => Ok(Priority::High),
        other => Err(format!("unknown priority '{other}'")),
    }
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric '{key}'"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    let raw = req_f64(v, key)?;
    if raw < 0.0 || raw.fract() != 0.0 || raw > u64::MAX as f64 {
        return Err(format!("'{key}' = {raw} is not an unsigned integer"));
    }
    Ok(raw as u64)
}

impl Submission {
    /// Parses one request line. Errors are human-readable strings the
    /// server echoes back on the `reject` line.
    pub fn parse_line(line: &str) -> Result<Submission, String> {
        let v = json::parse(line).map_err(|e| format!("bad JSON: {e:?}"))?;
        let sub = v.get("submit").ok_or("missing 'submit' object")?;
        let id = req_u64(sub, "id")?;
        let raw_tasks = sub
            .get("tasks")
            .and_then(Json::as_array)
            .ok_or("missing 'tasks' array")?;
        if raw_tasks.is_empty() {
            return Err("empty 'tasks' array".to_string());
        }
        let mut tasks = Vec::with_capacity(raw_tasks.len());
        for (i, t) in raw_tasks.iter().enumerate() {
            let task = SubmitTask {
                size_mi: req_f64(t, "size_mi").map_err(|e| format!("task {i}: {e}"))?,
                deadline: req_f64(t, "deadline").map_err(|e| format!("task {i}: {e}"))?,
                priority: t
                    .get("priority")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("task {i}: missing 'priority'"))
                    .and_then(|s| parse_priority(s).map_err(|e| format!("task {i}: {e}")))?,
                site: SiteId(req_u64(t, "site").map_err(|e| format!("task {i}: {e}"))? as u32),
            };
            task.validate().map_err(|e| format!("task {i}: {e}"))?;
            tasks.push(task);
        }
        Ok(Submission { id, tasks })
    }

    /// Renders the request line (no trailing newline).
    pub fn render_line(&self) -> String {
        let mut out = String::with_capacity(64 + 64 * self.tasks.len());
        out.push_str("{\"submit\":{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"tasks\":[");
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"size_mi\":");
            out.push_str(&t.size_mi.to_string());
            out.push_str(",\"deadline\":");
            out.push_str(&t.deadline.to_string());
            out.push_str(",\"priority\":\"");
            out.push_str(priority_name(t.priority));
            out.push_str("\",\"site\":");
            out.push_str(&t.site.0.to_string());
            out.push('}');
        }
        out.push_str("]}}");
        out
    }
}

/// One server → client line.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror the wire keys documented per variant
pub enum Notification {
    /// The submission was admitted; `tasks` are the server-assigned ids,
    /// `t` the sim-time admission instant.
    Ack { id: u64, tasks: Vec<u64>, t: f64 },
    /// The submission was refused as a whole.
    Reject { id: u64, reason: String },
    /// A task received its placement decision.
    Placed {
        task: u64,
        site: u32,
        node: u32,
        t: f64,
    },
    /// A task finished (deadline met or missed).
    Done { task: u64, met: bool, t: f64 },
    /// A task permanently failed.
    Failed { task: u64, t: f64 },
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Notification {
    /// Renders the notification line (no trailing newline).
    pub fn render_line(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            Notification::Ack { id, tasks, t } => {
                out.push_str("{\"ack\":{\"id\":");
                out.push_str(&id.to_string());
                out.push_str(",\"tasks\":[");
                for (i, task) in tasks.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&task.to_string());
                }
                out.push_str("],\"t\":");
                out.push_str(&t.to_string());
                out.push_str("}}");
            }
            Notification::Reject { id, reason } => {
                out.push_str("{\"reject\":{\"id\":");
                out.push_str(&id.to_string());
                out.push_str(",\"reason\":\"");
                escape_json(reason, &mut out);
                out.push_str("\"}}");
            }
            Notification::Placed {
                task,
                site,
                node,
                t,
            } => {
                out.push_str("{\"placed\":{\"task\":");
                out.push_str(&task.to_string());
                out.push_str(",\"site\":");
                out.push_str(&site.to_string());
                out.push_str(",\"node\":");
                out.push_str(&node.to_string());
                out.push_str(",\"t\":");
                out.push_str(&t.to_string());
                out.push_str("}}");
            }
            Notification::Done { task, met, t } => {
                out.push_str("{\"done\":{\"task\":");
                out.push_str(&task.to_string());
                out.push_str(",\"met\":");
                out.push_str(if *met { "true" } else { "false" });
                out.push_str(",\"t\":");
                out.push_str(&t.to_string());
                out.push_str("}}");
            }
            Notification::Failed { task, t } => {
                out.push_str("{\"failed\":{\"task\":");
                out.push_str(&task.to_string());
                out.push_str(",\"t\":");
                out.push_str(&t.to_string());
                out.push_str("}}");
            }
        }
        out
    }

    /// Parses one notification line (the client half).
    pub fn parse_line(line: &str) -> Result<Notification, String> {
        let v = json::parse(line).map_err(|e| format!("bad JSON: {e:?}"))?;
        if let Some(a) = v.get("ack") {
            let tasks = a
                .get("tasks")
                .and_then(Json::as_array)
                .ok_or("ack missing 'tasks'")?
                .iter()
                .map(|t| {
                    t.as_f64()
                        .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                        .map(|x| x as u64)
                        .ok_or_else(|| "non-integer task id in ack".to_string())
                })
                .collect::<Result<Vec<u64>, String>>()?;
            return Ok(Notification::Ack {
                id: req_u64(a, "id")?,
                tasks,
                t: req_f64(a, "t")?,
            });
        }
        if let Some(r) = v.get("reject") {
            return Ok(Notification::Reject {
                id: req_u64(r, "id")?,
                reason: r
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            });
        }
        if let Some(p) = v.get("placed") {
            return Ok(Notification::Placed {
                task: req_u64(p, "task")?,
                site: req_u64(p, "site")? as u32,
                node: req_u64(p, "node")? as u32,
                t: req_f64(p, "t")?,
            });
        }
        if let Some(d) = v.get("done") {
            return Ok(Notification::Done {
                task: req_u64(d, "task")?,
                met: d
                    .get("met")
                    .and_then(Json::as_bool)
                    .ok_or("done missing 'met'")?,
                t: req_f64(d, "t")?,
            });
        }
        if let Some(f) = v.get("failed") {
            return Ok(Notification::Failed {
                task: req_u64(f, "task")?,
                t: req_f64(f, "t")?,
            });
        }
        Err("unknown notification kind".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_submission() -> Submission {
        Submission {
            id: 42,
            tasks: vec![
                SubmitTask {
                    size_mi: 1200.0,
                    deadline: 60.5,
                    priority: Priority::High,
                    site: SiteId(0),
                },
                SubmitTask {
                    size_mi: 3.25,
                    deadline: 9.0,
                    priority: Priority::Low,
                    site: SiteId(7),
                },
            ],
        }
    }

    #[test]
    fn submission_round_trips() {
        let sub = sample_submission();
        let line = sub.render_line();
        let back = Submission::parse_line(&line).expect("parses");
        assert_eq!(back, sub);
    }

    #[test]
    fn notifications_round_trip() {
        let all = vec![
            Notification::Ack {
                id: 42,
                tasks: vec![0, 1, 2],
                t: 12.5,
            },
            Notification::Reject {
                id: 43,
                reason: "site 9 out of range: \"bad\"\n".to_string(),
            },
            Notification::Placed {
                task: 1,
                site: 0,
                node: 3,
                t: 13.0,
            },
            Notification::Done {
                task: 1,
                met: true,
                t: 19.25,
            },
            Notification::Failed { task: 2, t: 20.0 },
        ];
        for n in all {
            let line = n.render_line();
            let back = Notification::parse_line(&line)
                .unwrap_or_else(|e| panic!("{line} failed to parse: {e}"));
            assert_eq!(back, n, "round-trip of {line}");
        }
    }

    #[test]
    fn malformed_submissions_are_typed_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"submit":{"id":1,"tasks":[]}}"#,
            r#"{"submit":{"id":-1,"tasks":[{"size_mi":1,"deadline":1,"priority":"low","site":0}]}}"#,
            r#"{"submit":{"id":1,"tasks":[{"size_mi":0,"deadline":1,"priority":"low","site":0}]}}"#,
            r#"{"submit":{"id":1,"tasks":[{"size_mi":1,"deadline":-2,"priority":"low","site":0}]}}"#,
            r#"{"submit":{"id":1,"tasks":[{"size_mi":1,"deadline":1,"priority":"urgent","site":0}]}}"#,
            r#"{"submit":{"id":1,"tasks":[{"size_mi":1,"deadline":1,"priority":"low"}]}}"#,
        ] {
            assert!(Submission::parse_line(bad).is_err(), "accepted: {bad}");
        }
    }
}
