//! Task priorities and priority mixes.
//!
//! The paper derives priority from deadline slack relative to the expected
//! execution time `ACT_i` on the reference (slowest) resource:
//!
//! * **High** — deadline at most 20 % later than `ACT_i`,
//! * **Low** — deadline 80 % or more later than `ACT_i`,
//! * **Medium** — otherwise.
//!
//! Experiments vary "the probabilities of three different task priorities"
//! (§V.A); [`PriorityMix`] captures those probabilities and maps a class to
//! the matching `add_t` slack band.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Slack fraction below which a task is high priority (`add_t <= 0.2`).
pub const HIGH_SLACK_MAX: f64 = 0.2;
/// Slack fraction at or above which a task is low priority (`add_t >= 0.8`).
pub const LOW_SLACK_MIN: f64 = 0.8;
/// Upper bound of the slack range (`add_t <= 1.5`, i.e. 150 % of ACT).
pub const SLACK_MAX: f64 = 1.5;

/// Task urgency class, derived from deadline slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// Deadline ≥ 80 % later than the reference execution time.
    Low,
    /// Between the high and low bands.
    Medium,
    /// Deadline ≤ 20 % later than the reference execution time.
    High,
}

impl Priority {
    /// Classifies a slack fraction `add_t / ACT` per the paper's rule.
    ///
    /// # Panics
    /// Panics if `slack` is negative or non-finite.
    #[inline]
    pub fn from_slack(slack: f64) -> Priority {
        assert!(
            slack.is_finite() && slack >= 0.0,
            "slack must be non-negative, got {slack}"
        );
        if slack <= HIGH_SLACK_MAX {
            Priority::High
        } else if slack >= LOW_SLACK_MIN {
            Priority::Low
        } else {
            Priority::Medium
        }
    }

    /// The `[lo, hi)` slack band that generates this priority class.
    ///
    /// The high band is `[0, 0.2]`, medium `(0.2, 0.8)`, low `[0.8, 1.5]`;
    /// returned as half-open ranges that tile `[0, 1.5]` without gaps.
    pub fn slack_band(self) -> (f64, f64) {
        match self {
            Priority::High => (0.0, HIGH_SLACK_MAX),
            Priority::Medium => (HIGH_SLACK_MAX, LOW_SLACK_MIN),
            Priority::Low => (LOW_SLACK_MIN, SLACK_MAX),
        }
    }

    /// All classes, lowest urgency first.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Medium, Priority::High];

    /// Dense index (0 = Low, 1 = Medium, 2 = High) for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Medium => 1,
            Priority::High => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::Low => "low",
            Priority::Medium => "medium",
            Priority::High => "high",
        };
        f.write_str(s)
    }
}

/// Probabilities of generating each priority class.
///
/// Invariant: components are non-negative and sum to 1 (±1e-9), enforced by
/// [`PriorityMix::new`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityMix {
    /// Probability of a low-priority task.
    pub low: f64,
    /// Probability of a medium-priority task.
    pub medium: f64,
    /// Probability of a high-priority task.
    pub high: f64,
}

impl PriorityMix {
    /// Creates a mix, validating that the probabilities form a distribution.
    ///
    /// # Panics
    /// Panics if any component is negative or they do not sum to 1.
    pub fn new(low: f64, medium: f64, high: f64) -> Self {
        assert!(
            low >= 0.0 && medium >= 0.0 && high >= 0.0,
            "probabilities must be non-negative"
        );
        let sum = low + medium + high;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "priority probabilities must sum to 1, got {sum}"
        );
        PriorityMix { low, medium, high }
    }

    /// Equal thirds.
    pub fn uniform() -> Self {
        PriorityMix::new(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)
    }

    /// Draws a class given a standard-uniform sample `u ∈ [0, 1)`.
    #[inline]
    pub fn classify(&self, u: f64) -> Priority {
        if u < self.low {
            Priority::Low
        } else if u < self.low + self.medium {
            Priority::Medium
        } else {
            Priority::High
        }
    }

    /// Probability of the given class.
    pub fn probability(&self, p: Priority) -> f64 {
        match p {
            Priority::Low => self.low,
            Priority::Medium => self.medium,
            Priority::High => self.high,
        }
    }
}

impl Default for PriorityMix {
    fn default() -> Self {
        PriorityMix::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_classification_matches_paper() {
        assert_eq!(Priority::from_slack(0.0), Priority::High);
        assert_eq!(Priority::from_slack(0.2), Priority::High);
        assert_eq!(Priority::from_slack(0.21), Priority::Medium);
        assert_eq!(Priority::from_slack(0.79), Priority::Medium);
        assert_eq!(Priority::from_slack(0.8), Priority::Low);
        assert_eq!(Priority::from_slack(1.5), Priority::Low);
    }

    #[test]
    fn bands_tile_the_slack_range() {
        let (h_lo, h_hi) = Priority::High.slack_band();
        let (m_lo, m_hi) = Priority::Medium.slack_band();
        let (l_lo, l_hi) = Priority::Low.slack_band();
        assert_eq!(h_lo, 0.0);
        assert_eq!(h_hi, m_lo);
        assert_eq!(m_hi, l_lo);
        assert_eq!(l_hi, SLACK_MAX);
    }

    #[test]
    fn band_membership_agrees_with_classifier() {
        for p in Priority::ALL {
            let (lo, hi) = p.slack_band();
            let mid = (lo + hi) / 2.0;
            assert_eq!(Priority::from_slack(mid), p, "midpoint of {p} band");
        }
    }

    #[test]
    fn mix_classify_respects_probabilities() {
        let mix = PriorityMix::new(0.5, 0.3, 0.2);
        assert_eq!(mix.classify(0.0), Priority::Low);
        assert_eq!(mix.classify(0.49), Priority::Low);
        assert_eq!(mix.classify(0.5), Priority::Medium);
        assert_eq!(mix.classify(0.79), Priority::Medium);
        assert_eq!(mix.classify(0.8), Priority::High);
        assert_eq!(mix.classify(0.999), Priority::High);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_mix_rejected() {
        let _ = PriorityMix::new(0.5, 0.5, 0.5);
    }

    #[test]
    fn ordering_low_to_high() {
        assert!(Priority::Low < Priority::Medium);
        assert!(Priority::Medium < Priority::High);
    }

    #[test]
    fn indices_are_dense() {
        let idxs: Vec<usize> = Priority::ALL.iter().map(|p| p.index()).collect();
        assert_eq!(idxs, vec![0, 1, 2]);
    }

    #[test]
    fn probability_lookup() {
        let mix = PriorityMix::new(0.2, 0.3, 0.5);
        assert_eq!(mix.probability(Priority::Low), 0.2);
        assert_eq!(mix.probability(Priority::Medium), 0.3);
        assert_eq!(mix.probability(Priority::High), 0.5);
    }
}
